package diag

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"parcfl/internal/obs"
)

// Trigger rule names. Rules are evaluated once per Interval against the
// sink; each has an independent cooldown so a sustained anomaly produces a
// bounded trickle of bundles, not a flood, while distinct anomalies (a burn
// spike during a queue backlog) still each get their capture.
const (
	// RuleBurn fires when the SLO's shortest-window availability or latency
	// burn rate exceeds Config.BurnThreshold.
	RuleBurn = "burn"
	// RuleQueue fires when the admission queue depth gauge reaches
	// Config.QueueHighWater.
	RuleQueue = "queue"
	// RuleP99 fires when the server latency p99 over the last evaluation
	// window (delta of histogram snapshots, not lifetime) exceeds
	// Config.P99TargetNS.
	RuleP99 = "p99"
	// RuleManual is the operator-initiated trigger (/debug/bundle?trigger=1
	// or a load client's -bundle-on-fail).
	RuleManual = "manual"
)

// ErrCooldown is returned by Trigger when the rule fired within its
// cooldown window and the capture was suppressed.
var ErrCooldown = errors.New("diag: trigger in cooldown")

// Config configures a Watchdog.
type Config struct {
	Sink *obs.Sink
	// Dir is where bundles are written (created if absent).
	Dir string
	// Interval between rule evaluations. Default 1s.
	Interval time.Duration
	// Cooldown per rule between captures. Default 30s.
	Cooldown time.Duration
	// MaxBundles bounds on-disk retention: after each capture the oldest
	// bundles beyond this count are deleted. Default 8.
	MaxBundles int
	// CPUProfile is the CPU sampling window per capture. Default 250ms;
	// negative disables the cpu.pprof artifact (captures stop blocking).
	CPUProfile time.Duration

	// BurnThreshold enables RuleBurn when > 0 (e.g. 10 = burning error
	// budget at 10x the sustainable rate).
	BurnThreshold float64
	// QueueHighWater enables RuleQueue when > 0.
	QueueHighWater int64
	// P99TargetNS enables RuleP99 when > 0.
	P99TargetNS int64

	// AnomalyWindow is how long the sink's trace store keeps retaining
	// every completed request after a trigger rule fires (MarkAnomaly);
	// 0 means 5s, negative disables the marking.
	AnomalyWindow time.Duration

	// Sources adds extra artifacts to every capture.
	Sources map[string]Source

	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// BundleInfo describes one bundle on disk, as listed by /debug/bundle.
type BundleInfo struct {
	ID        string `json:"id"`
	File      string `json:"file"`
	Trigger   string `json:"trigger"`
	Reason    string `json:"reason"`
	UnixNano  int64  `json:"unix_nano"`
	SizeBytes int64  `json:"size_bytes"`
}

// Watchdog evaluates trigger rules on a ticker and captures bundles.
type Watchdog struct {
	cfg Config
	now func() time.Time

	mu        sync.Mutex
	lastFired map[string]time.Time
	lastHist  obs.HistSnapshot // previous tick's snapshot, for windowed p99
	captured  map[string]BundleInfo

	stop chan struct{}
	done chan struct{}
}

// New creates the bundle directory and returns a stopped watchdog: rules
// only run after Start, but Trigger works immediately (the manual rule
// needs no ticker).
func New(cfg Config) (*Watchdog, error) {
	if cfg.Dir == "" {
		return nil, errors.New("diag: Config.Dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = 250 * time.Millisecond
	}
	if cfg.AnomalyWindow == 0 {
		cfg.AnomalyWindow = 5 * time.Second
	}
	now := time.Now
	if cfg.Now != nil {
		now = cfg.Now
	}
	return &Watchdog{
		cfg:       cfg,
		now:       now,
		lastFired: map[string]time.Time{},
		captured:  map[string]BundleInfo{},
		lastHist:  cfg.Sink.Hist(obs.HistServerLatencyNS),
	}, nil
}

// Start launches the rule-evaluation loop. Idempotent-ish: call once.
func (w *Watchdog) Start() {
	if w == nil || w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop()
}

// Stop halts rule evaluation and waits for any in-flight capture to finish.
// Safe on a never-started or nil watchdog.
func (w *Watchdog) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop = nil
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.evaluate()
		}
	}
}

// evaluate runs every enabled rule once. Rules observe the sink; the first
// that fires captures a bundle (later rules wait for the next tick — the
// capture itself is the expensive part, and one bundle already holds the
// whole correlated state).
func (w *Watchdog) evaluate() {
	s := w.cfg.Sink
	if rule, reason, ok := w.check(s); ok {
		if _, err := w.Trigger(rule, reason); err != nil && !errors.Is(err, ErrCooldown) {
			fmt.Fprintln(os.Stderr, "diag: capture failed:", err)
		}
	}
}

// check evaluates the rules in priority order and returns the first firing.
// The p99 window snapshot advances every call regardless, so the delta
// always spans exactly one evaluation interval.
func (w *Watchdog) check(s *obs.Sink) (rule, reason string, ok bool) {
	cur := s.Hist(obs.HistServerLatencyNS)
	w.mu.Lock()
	delta := cur.Sub(w.lastHist)
	w.lastHist = cur
	w.mu.Unlock()

	if thr := w.cfg.BurnThreshold; thr > 0 {
		if slo := s.SLO(); slo != nil {
			snap := slo.Snapshot()
			if len(snap.Windows) > 0 {
				win := snap.Windows[0] // shortest window reacts fastest
				if win.AvailBurnRate >= thr {
					return RuleBurn, fmt.Sprintf("availability burn rate %.2f >= %.2f (window %ds)",
						win.AvailBurnRate, thr, win.WindowSec), true
				}
				if win.LatencyBurnRate >= thr {
					return RuleBurn, fmt.Sprintf("latency burn rate %.2f >= %.2f (window %ds)",
						win.LatencyBurnRate, thr, win.WindowSec), true
				}
			}
		}
	}
	if hw := w.cfg.QueueHighWater; hw > 0 {
		if depth := s.Gauge(obs.GaugeServerQueueDepth); depth >= hw {
			return RuleQueue, fmt.Sprintf("admission queue depth %d >= high water %d", depth, hw), true
		}
	}
	if target := w.cfg.P99TargetNS; target > 0 && delta.Count > 0 {
		if p99 := delta.Quantile(0.99); p99 > target {
			return RuleP99, fmt.Sprintf("windowed p99 %dns > target %dns over %d requests",
				p99, target, delta.Count), true
		}
	}
	return "", "", false
}

// Trigger captures a bundle for rule now, honouring the rule's cooldown
// (ErrCooldown when suppressed) and pruning retention afterwards. Safe for
// concurrent use; captures serialise on the CPU-profile mutex.
func (w *Watchdog) Trigger(rule, reason string) (BundleInfo, error) {
	now := w.now()
	w.mu.Lock()
	if last, ok := w.lastFired[rule]; ok && now.Sub(last) < w.cfg.Cooldown {
		w.mu.Unlock()
		return BundleInfo{}, fmt.Errorf("%w: rule %q fired %s ago (cooldown %s)",
			ErrCooldown, rule, now.Sub(last).Round(time.Millisecond), w.cfg.Cooldown)
	}
	// Reserve the cooldown slot so concurrent Triggers on the same rule
	// don't capture duplicate bundles while this one is in flight.
	prev, hadPrev := w.lastFired[rule]
	w.lastFired[rule] = now
	w.mu.Unlock()

	// A firing rule opens the trace store's anomaly window: every request
	// completing around the incident is retained, not just the ones that
	// individually look slow or failed. Marked before the capture (and kept
	// even if the capture fails — the anomaly is real either way).
	if w.cfg.AnomalyWindow > 0 {
		w.cfg.Sink.TraceStore().MarkAnomaly(w.cfg.AnomalyWindow)
	}

	man, path, err := Capture(w.cfg.Dir, rule, reason, CaptureConfig{
		Sink:       w.cfg.Sink,
		CPUProfile: w.cfg.CPUProfile,
		Sources:    w.cfg.Sources,
		now:        w.now,
	})
	if err != nil {
		// A failed capture (e.g. transient disk-full in the bundle dir) must
		// not burn the cooldown window: the anomaly is still ongoing, and the
		// next tick should get another shot at recording it. Roll the
		// reservation back — unless someone else has re-fired meanwhile.
		w.mu.Lock()
		if w.lastFired[rule].Equal(now) {
			if hadPrev {
				w.lastFired[rule] = prev
			} else {
				delete(w.lastFired, rule)
			}
		}
		w.mu.Unlock()
		return BundleInfo{}, err
	}
	st, _ := os.Stat(path)
	info := BundleInfo{
		ID:       man.ID,
		File:     filepath.Base(path),
		Trigger:  rule,
		Reason:   reason,
		UnixNano: man.CapturedUnixNano,
	}
	if st != nil {
		info.SizeBytes = st.Size()
	}
	w.mu.Lock()
	w.captured[info.File] = info
	w.mu.Unlock()
	w.prune()
	return info, nil
}

// prune deletes the oldest bundles beyond MaxBundles. Bundle filenames
// embed a UTC timestamp, so lexicographic order is capture order.
func (w *Watchdog) prune() {
	files := w.bundleFiles()
	if len(files) <= w.cfg.MaxBundles {
		return
	}
	for _, f := range files[:len(files)-w.cfg.MaxBundles] {
		os.Remove(filepath.Join(w.cfg.Dir, f))
		w.mu.Lock()
		delete(w.captured, f)
		w.mu.Unlock()
	}
}

func (w *Watchdog) bundleFiles() []string {
	ents, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "bundle-") && strings.HasSuffix(name, ".tar.gz") {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	return files
}

// List returns every bundle in the directory, oldest first. Bundles
// captured by this process carry their trigger and reason; bundles left by
// a previous run are listed from their filename alone.
func (w *Watchdog) List() []BundleInfo {
	files := w.bundleFiles()
	out := make([]BundleInfo, 0, len(files))
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, f := range files {
		if info, ok := w.captured[f]; ok {
			out = append(out, info)
			continue
		}
		info := BundleInfo{File: f, Trigger: "unknown"}
		if st, err := os.Stat(filepath.Join(w.cfg.Dir, f)); err == nil {
			info.SizeBytes = st.Size()
			info.UnixNano = st.ModTime().UnixNano()
		}
		// bundle-<ts>-<id12>.tar.gz → the short ID is recoverable.
		base := strings.TrimSuffix(f, ".tar.gz")
		if i := strings.LastIndexByte(base, '-'); i >= 0 {
			info.ID = base[i+1:]
		}
		out = append(out, info)
	}
	return out
}

// Path resolves a bundle ID (full or the 12-char filename prefix) to its
// on-disk path. The boolean reports whether it was found.
func (w *Watchdog) Path(id string) (string, bool) {
	if len(id) < 12 {
		return "", false
	}
	for _, info := range w.List() {
		// Either side may be truncated (filenames carry 12 hex chars, the
		// manifest the full digest), so match on the shared prefix.
		if strings.HasPrefix(info.ID, id) || strings.HasPrefix(id, info.ID) {
			return filepath.Join(w.cfg.Dir, info.File), true
		}
	}
	return "", false
}
