package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parcfl/internal/obs"
)

// testSink builds a sink with every optional attachment the bundle knows
// how to capture: spans, recorder, SLO, exemplars.
func testSink() *obs.Sink {
	s := obs.New(obs.Config{Workers: 2, TraceCap: 1 << 10})
	s.EnableSpans(2, 1<<10)
	s.EnableExemplars()
	rec := obs.NewRecorder(s, obs.RecorderConfig{Interval: time.Hour}) // manual samples only
	s.AttachRecorder(rec)
	s.AttachSLO(obs.NewSLO(obs.SLOConfig{}))
	s.Observe(obs.HistServerLatencyNS, 5000)
	s.Exemplar(obs.HistServerLatencyNS, 5000, "req-test", 3)
	s.SpanInstant(obs.SpJmpTake, obs.NoWorker, 1, 2)
	return s
}

// TestCaptureAndValidate: a capture produces a tarball whose manifest
// survives full re-verification — every artifact present, sizes and sha256s
// matching, bundle ID consistent with the digests.
func TestCaptureAndValidate(t *testing.T) {
	dir := t.TempDir()
	s := testSink()
	man, path, err := Capture(dir, RuleManual, "unit test", CaptureConfig{
		Sink:       s,
		CPUProfile: 10 * time.Millisecond,
		Sources: map[string]Source{
			"config.json": func() ([]byte, error) { return []byte(`{"queue":64}`), nil },
			"broken.json": func() ([]byte, error) { return nil, errors.New("source exploded") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != BundleSchema || len(man.ID) != 64 {
		t.Fatalf("manifest = %+v", man)
	}
	got, err := ValidateBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != man.ID || got.Trigger != RuleManual {
		t.Fatalf("validated manifest diverges: %+v vs %+v", got, man)
	}
	names := map[string]bool{}
	for _, a := range got.Artifacts {
		names[a.Name] = true
	}
	for _, want := range []string{
		"cpu.pprof", "heap.pprof", "goroutines.txt", "trace.json",
		"timeseries.json", "slo.json", "obs.json", "statusz.json",
		"exemplars.json", "config.json", "broken.json.error.txt",
	} {
		if !names[want] {
			t.Fatalf("bundle missing artifact %s; have %v", want, names)
		}
	}
}

// TestValidateDetectsTamper: flipping one byte of an artifact makes
// validation fail.
func TestValidateDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	_, path, err := Capture(dir, RuleManual, "tamper test", CaptureConfig{
		Sink: testSink(),
		Sources: map[string]Source{
			"victim.txt": func() ([]byte, error) { return []byte("original payload original payload"), nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the bundle with one artifact byte flipped. Re-tar rather than
	// flipping compressed bytes (which would just break gzip, a weaker test).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := rewriteArtifact(t, data, "victim.txt", []byte("original payload TAMPERED payload"))
	bad := filepath.Join(dir, "tampered.tar.gz")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBundle(bad); err == nil {
		t.Fatal("tampered bundle validated clean")
	}
}

// rewriteArtifact re-tars a bundle with one artifact's content replaced
// (same name, same manifest — i.e. a post-capture tamper).
func rewriteArtifact(t *testing.T, bundle []byte, name string, content []byte) []byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	var out bytes.Buffer
	ogz := gzip.NewWriter(&out)
	tw := tar.NewWriter(ogz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name == name {
			if len(content) != len(data) {
				t.Fatalf("tamper payload %d bytes, original %d (sizes must match to isolate the sha256 check)", len(content), len(data))
			}
			data = content
		}
		hdr.Size = int64(len(data))
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ogz.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestTriggerCooldown: the same rule within the cooldown window returns
// ErrCooldown; a different rule still fires; the clock advancing past the
// cooldown re-arms.
func TestTriggerCooldown(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1000, 0)
	w, err := New(Config{
		Sink: testSink(), Dir: dir,
		Cooldown: 10 * time.Second, CPUProfile: -1, // -1: skip CPU sampling in tests
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Trigger(RuleManual, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Trigger(RuleManual, "second"); !errors.Is(err, ErrCooldown) {
		t.Fatalf("second trigger in cooldown got %v, want ErrCooldown", err)
	}
	if _, err := w.Trigger(RuleQueue, "other rule"); err != nil {
		t.Fatalf("independent rule blocked: %v", err)
	}
	clock = clock.Add(11 * time.Second)
	if _, err := w.Trigger(RuleManual, "after cooldown"); err != nil {
		t.Fatalf("re-armed trigger failed: %v", err)
	}
	if got := len(w.List()); got != 3 {
		t.Fatalf("%d bundles on disk, want 3", got)
	}
}

// TestFailedCaptureReleasesCooldown: a capture that fails to write must not
// burn the rule's cooldown window — the next trigger while the anomaly is
// still live gets another shot, instead of losing the diagnostic window.
func TestFailedCaptureReleasesCooldown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundles")
	clock := time.Unix(4000, 0)
	w, err := New(Config{
		Sink: testSink(), Dir: dir,
		Cooldown: 10 * time.Second, CPUProfile: -1,
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Break the bundle directory: replace it with a regular file so the
	// tarball create fails (works even as root, unlike a chmod).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Trigger(RuleManual, "will fail"); err == nil {
		t.Fatal("capture into a broken dir reported success")
	} else if errors.Is(err, ErrCooldown) {
		t.Fatalf("first trigger hit cooldown: %v", err)
	}
	// Restore the directory. The clock has not advanced, so a leaked
	// reservation would surface here as ErrCooldown.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Trigger(RuleManual, "retry"); err != nil {
		t.Fatalf("retry after failed capture: %v (cooldown burned by the failure?)", err)
	}
	// And a successful capture does start the cooldown.
	if _, err := w.Trigger(RuleManual, "third"); !errors.Is(err, ErrCooldown) {
		t.Fatalf("trigger after success got %v, want ErrCooldown", err)
	}
}

// TestRetention: captures beyond MaxBundles delete the oldest.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(2000, 0)
	w, err := New(Config{
		Sink: testSink(), Dir: dir,
		Cooldown: time.Nanosecond, MaxBundles: 2, CPUProfile: -1,
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	var first BundleInfo
	for i := 0; i < 4; i++ {
		info, err := w.Trigger(RuleManual, "retention")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = info
		}
		clock = clock.Add(time.Second)
	}
	list := w.List()
	if len(list) != 2 {
		t.Fatalf("%d bundles retained, want 2: %+v", len(list), list)
	}
	for _, info := range list {
		if info.File == first.File {
			t.Fatalf("oldest bundle %s survived retention", first.File)
		}
	}
}

// TestWatchdogRules: the queue high-water and windowed-p99 rules fire on
// sink state, and the p99 rule uses the per-tick delta (a fast second
// window over a slow lifetime histogram stays quiet).
func TestWatchdogRules(t *testing.T) {
	s := testSink()
	w, err := New(Config{
		Sink: s, Dir: t.TempDir(),
		QueueHighWater: 5, P99TargetNS: 1_000_000, CPUProfile: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rule, _, ok := w.check(s); ok {
		t.Fatalf("quiet sink fired %q", rule)
	}
	s.SetGauge(obs.GaugeServerQueueDepth, 7)
	if rule, _, ok := w.check(s); !ok || rule != RuleQueue {
		t.Fatalf("queue depth 7 fired %q/%v, want queue", rule, ok)
	}
	s.SetGauge(obs.GaugeServerQueueDepth, 0)

	// Slow requests this window: p99 fires on the delta.
	for i := 0; i < 10; i++ {
		s.Observe(obs.HistServerLatencyNS, 50_000_000)
	}
	if rule, _, ok := w.check(s); !ok || rule != RuleP99 {
		t.Fatalf("slow window fired %q/%v, want p99", rule, ok)
	}
	// Next window is fast even though lifetime p99 is still slow.
	for i := 0; i < 10; i++ {
		s.Observe(obs.HistServerLatencyNS, 1000)
	}
	if rule, _, ok := w.check(s); ok {
		t.Fatalf("fast window fired %q (lifetime p99 leaked into the window)", rule)
	}
}

// TestHTTPHandler: list, manual trigger (incl. cooldown → 429) and fetch.
func TestHTTPHandler(t *testing.T) {
	clock := time.Unix(3000, 0)
	w, err := New(Config{
		Sink: testSink(), Dir: t.TempDir(),
		Cooldown: 10 * time.Second, CPUProfile: -1,
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/bundle", Handler(w))
	mux.Handle("/debug/bundle/", Handler(w))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(url string) (int, []byte) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get(ts.URL + "/debug/bundle")
	if code != 200 || !strings.Contains(string(body), listSchema) {
		t.Fatalf("list: %d %s", code, body)
	}

	code, body = get(ts.URL + "/debug/bundle?trigger=1&reason=pager")
	if code != 200 {
		t.Fatalf("trigger: %d %s", code, body)
	}
	var info BundleInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Trigger != RuleManual || info.Reason != "pager" {
		t.Fatalf("trigger info = %+v", info)
	}

	code, body = get(ts.URL + "/debug/bundle?trigger=1")
	if code != http.StatusTooManyRequests {
		t.Fatalf("cooldown trigger: %d %s, want 429", code, body)
	}

	code, body = get(ts.URL + "/debug/bundle/" + info.ID)
	if code != 200 {
		t.Fatalf("fetch: %d", code)
	}
	fetched := filepath.Join(t.TempDir(), "fetched.tar.gz")
	if err := os.WriteFile(fetched, body, 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := ValidateBundle(fetched)
	if err != nil {
		t.Fatalf("fetched bundle invalid: %v", err)
	}
	if man.ID != info.ID {
		t.Fatalf("fetched bundle ID %s, want %s", man.ID, info.ID)
	}

	code, _ = get(ts.URL + "/debug/bundle/000000000000")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", code)
	}
}
