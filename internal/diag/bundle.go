// Package diag is the resident analysis daemon's "black box": a watchdog
// that evaluates anomaly trigger rules against the observability sink and,
// when one fires, captures a correlated diagnostic bundle — CPU/heap
// profiles, goroutine dump, the recent span ring as a Perfetto trace,
// flight-recorder timeseries, SLO and stats snapshots, exemplars and build
// identity — into a single content-addressed tar.gz. The point is that the
// artifacts are captured *together*, at the moment of the anomaly: a request
// ID surfaced by a /metrics exemplar resolves to a "req N" lane in the
// bundled trace, to a phase breakdown in the bundled stats, and to the goroutine
// and CPU state of the same instant.
package diag

import (
	"archive/tar"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"parcfl/internal/obs"
)

// BundleSchema identifies the manifest.json layout inside a bundle.
const BundleSchema = "parcfl-bundle/v1"

// Source produces one extra named artifact for a bundle (e.g. the server's
// stats snapshot, or the daemon's effective configuration). It is called at
// capture time, once per bundle.
type Source func() ([]byte, error)

// Artifact describes one file inside a bundle, as listed by the manifest.
type Artifact struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the first entry of every bundle tarball. The bundle ID is
// content-addressed: the hex sha256 of the artifact digests in manifest
// order, so two bundles with identical contents get identical IDs and any
// tampering with an artifact is detectable from the manifest alone.
type Manifest struct {
	Schema           string            `json:"schema"`
	ID               string            `json:"id"`
	Trigger          string            `json:"trigger"`
	Reason           string            `json:"reason"`
	CapturedUnixNano int64             `json:"captured_unix_nano"`
	Build            obs.BuildIdentity `json:"build"`
	Artifacts        []Artifact        `json:"artifacts"`
}

// CaptureConfig controls one bundle capture.
type CaptureConfig struct {
	Sink *obs.Sink
	// CPUProfile is how long to sample the CPU profile for (0 disables the
	// cpu.pprof artifact; captures block for this duration).
	CPUProfile time.Duration
	// Sources adds extra artifacts by name (must end in a sane extension,
	// e.g. "server-stats.json").
	Sources map[string]Source
	// now overrides the wall clock in tests.
	now func() time.Time
}

// cpuProfileMu serialises CPU profiling across concurrent captures: the
// runtime supports only one CPU profile at a time, and a second
// StartCPUProfile would fail spuriously rather than queue.
var cpuProfileMu sync.Mutex

// Capture collects every artifact, assembles the manifest and writes the
// bundle as bundle-<utc-timestamp>-<id12>.tar.gz under dir. It returns the
// manifest and the written file's path. Artifacts that depend on optional
// attachments (recorder, SLO, heat, spans) are simply absent when the
// attachment is; errors from individual artifact builders become a
// <name>.error.txt artifact rather than aborting the capture — a black box
// that refuses to record because one gauge is broken is useless.
func Capture(dir string, trigger, reason string, cfg CaptureConfig) (Manifest, string, error) {
	now := time.Now
	if cfg.now != nil {
		now = cfg.now
	}
	s := cfg.Sink

	type artifact struct {
		name string
		data []byte
	}
	var arts []artifact
	add := func(name string, data []byte, err error) {
		if err != nil {
			name += ".error.txt"
			data = []byte(err.Error() + "\n")
		}
		arts = append(arts, artifact{name, data})
	}
	addJSON := func(name string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		add(name, data, err)
	}

	// CPU profile first: it blocks for the sampling window, and everything
	// captured after it describes the state at the *end* of that window —
	// closest to "now" for the snapshots that age fastest.
	if cfg.CPUProfile > 0 {
		data, err := captureCPUProfile(cfg.CPUProfile)
		add("cpu.pprof", data, err)
	}
	{
		data, err := captureHeapProfile()
		add("heap.pprof", data, err)
	}
	{
		data, err := captureGoroutines()
		add("goroutines.txt", data, err)
	}

	if s.SpanTracing() {
		var buf strings.Builder
		err := obs.WriteTraceEvents(&buf, s)
		add("trace.json", []byte(buf.String()), err)
	}
	if rec := s.FlightRecorder(); rec != nil {
		addJSON("timeseries.json", rec.Snapshot())
	}
	if slo := s.SLO(); slo != nil {
		addJSON("slo.json", slo.Snapshot())
	}
	if s != nil {
		addJSON("obs.json", s.Snapshot())
		addJSON("statusz.json", obs.Status(s))
	}
	if exs := collectExemplars(s); exs != nil {
		addJSON("exemplars.json", exs)
	}
	// Retained request traces are a first-class bundle artifact: the tail
	// the store kept (failures, slow requests, the anomaly window that
	// probably triggered this very capture) with identity and spans, so a
	// post-mortem has whole request traces and not just the raw span ring.
	if ts := s.TraceStore(); ts != nil {
		addJSON("traces.json", ts.Dump(obs.TraceQuery{Outcome: -1}))
	}
	if h := s.Heat(); h != nil {
		addJSON("heat.json", h.HeatSnapshot())
	}
	names := make([]string, 0, len(cfg.Sources))
	for name := range cfg.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := cfg.Sources[name]()
		add(name, data, err)
	}

	// Manifest: digest each artifact, derive the content-addressed ID.
	capturedAt := now()
	man := Manifest{
		Schema:           BundleSchema,
		Trigger:          trigger,
		Reason:           reason,
		CapturedUnixNano: capturedAt.UnixNano(),
		Build:            obs.ReadBuildIdentity(),
	}
	idh := sha256.New()
	for _, a := range arts {
		sum := sha256.Sum256(a.data)
		hexSum := hex.EncodeToString(sum[:])
		man.Artifacts = append(man.Artifacts, Artifact{
			Name: a.name, Size: int64(len(a.data)), SHA256: hexSum,
		})
		idh.Write(sum[:])
	}
	man.ID = hex.EncodeToString(idh.Sum(nil))

	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, "", err
	}

	fname := fmt.Sprintf("bundle-%s-%s.tar.gz",
		capturedAt.UTC().Format("20060102T150405"), man.ID[:12])
	path := filepath.Join(dir, fname)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return Manifest{}, "", err
	}
	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)
	write := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)),
			ModTime: capturedAt,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	err = write("manifest.json", manData)
	for _, a := range arts {
		if err != nil {
			break
		}
		err = write(a.name, a.data)
	}
	for _, closeErr := range []error{tw.Close(), gz.Close(), f.Close()} {
		if err == nil {
			err = closeErr
		}
	}
	if err != nil {
		os.Remove(tmp)
		return Manifest{}, "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Manifest{}, "", err
	}
	return man, path, nil
}

func captureCPUProfile(d time.Duration) ([]byte, error) {
	cpuProfileMu.Lock()
	defer cpuProfileMu.Unlock()
	var buf strings.Builder
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, err
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return []byte(buf.String()), nil
}

func captureHeapProfile() ([]byte, error) {
	var buf strings.Builder
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}

func captureGoroutines() ([]byte, error) {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return nil, fmt.Errorf("no goroutine profile")
	}
	var buf strings.Builder
	if err := p.WriteTo(&buf, 2); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}

// exemplarDump is the exemplars.json layout: per-histogram bucket exemplars,
// the join key between a /metrics exemplar and the bundled trace's "req N"
// lanes.
type exemplarDump struct {
	Schema string                          `json:"schema"`
	Hists  map[string][]obs.BucketExemplar `json:"hists"`
}

func collectExemplars(s *obs.Sink) *exemplarDump {
	if s == nil || !s.ExemplarsEnabled() {
		return nil
	}
	dump := &exemplarDump{Schema: "parcfl-exemplars/v1", Hists: map[string][]obs.BucketExemplar{}}
	for h := obs.HistID(0); h < obs.NumHists; h++ {
		if exs := s.HistExemplars(h); len(exs) > 0 {
			dump.Hists[h.String()] = exs
		}
	}
	if len(dump.Hists) == 0 {
		return nil
	}
	return dump
}

// ValidateBundle re-reads a bundle from disk and checks its manifest: the
// schema matches, every listed artifact is present with the listed size and
// sha256, no unlisted files ride along, and the bundle ID matches the
// artifact digests. Returns the verified manifest.
func ValidateBundle(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return Manifest{}, err
	}
	tr := tar.NewReader(gz)

	var man Manifest
	haveManifest := false
	got := map[string]Artifact{}
	idh := sha256.New()
	for {
		hdr, err := tr.Next()
		if err != nil {
			break
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return Manifest{}, fmt.Errorf("%s: %w", hdr.Name, err)
		}
		if hdr.Name == "manifest.json" {
			if err := json.Unmarshal(data, &man); err != nil {
				return Manifest{}, fmt.Errorf("manifest.json: %w", err)
			}
			haveManifest = true
			continue
		}
		sum := sha256.Sum256(data)
		got[hdr.Name] = Artifact{Name: hdr.Name, Size: int64(len(data)), SHA256: hex.EncodeToString(sum[:])}
		idh.Write(sum[:])
	}
	if !haveManifest {
		return Manifest{}, fmt.Errorf("%s: no manifest.json", path)
	}
	if man.Schema != BundleSchema {
		return Manifest{}, fmt.Errorf("%s: schema %q, want %q", path, man.Schema, BundleSchema)
	}
	if len(got) != len(man.Artifacts) {
		return Manifest{}, fmt.Errorf("%s: %d artifacts on disk, manifest lists %d", path, len(got), len(man.Artifacts))
	}
	for _, want := range man.Artifacts {
		g, ok := got[want.Name]
		if !ok {
			return Manifest{}, fmt.Errorf("%s: artifact %s missing", path, want.Name)
		}
		if g != want {
			return Manifest{}, fmt.Errorf("%s: artifact %s mismatch: manifest %+v, disk %+v", path, want.Name, want, g)
		}
	}
	// The ID digest folds artifact hashes in tar (= manifest) order, which
	// the loop above already consumed sequentially.
	if id := hex.EncodeToString(idh.Sum(nil)); id != man.ID {
		return Manifest{}, fmt.Errorf("%s: bundle ID %s does not match artifact digests (%s)", path, man.ID, id)
	}
	return man, nil
}
