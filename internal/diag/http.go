package diag

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// listSchema identifies the /debug/bundle list JSON layout.
const listSchema = "parcfl-bundle-list/v1"

// Handler serves the bundle endpoints on a watchdog:
//
//	GET /debug/bundle            — list bundles (JSON)
//	GET /debug/bundle?trigger=1  — capture a manual bundle now (429 in cooldown)
//	GET /debug/bundle/<id>       — fetch one bundle's tar.gz (id may be the
//	                               12-char short form)
//
// Mount it at both /debug/bundle and /debug/bundle/ so the id-less forms
// and the fetch form resolve.
func Handler(w *Watchdog) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/bundle"), "/")
		switch {
		case rest != "":
			serveFetch(rw, r, w, rest)
		case r.URL.Query().Get("trigger") != "":
			serveTrigger(rw, r, w)
		default:
			serveList(rw, w)
		}
	})
}

func serveList(rw http.ResponseWriter, w *Watchdog) {
	payload := struct {
		Schema  string       `json:"schema"`
		Bundles []BundleInfo `json:"bundles"`
	}{Schema: listSchema, Bundles: w.List()}
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

func serveTrigger(rw http.ResponseWriter, r *http.Request, w *Watchdog) {
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "manual trigger via /debug/bundle"
	}
	info, err := w.Trigger(RuleManual, reason)
	if errors.Is(err, ErrCooldown) {
		http.Error(rw, err.Error(), http.StatusTooManyRequests)
		return
	}
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(info)
}

func serveFetch(rw http.ResponseWriter, r *http.Request, w *Watchdog, id string) {
	path, ok := w.Path(id)
	if !ok {
		http.Error(rw, "no such bundle: "+id, http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/gzip")
	http.ServeFile(rw, r, path)
}
