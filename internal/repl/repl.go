// Package repl implements the interactive query shell behind cmd/parcfl:
// demand queries (pts/flows/alias/explain) issued line by line over a loaded
// program, the workflow of an IDE or debugging client.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"parcfl/internal/autopsy"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// Shell holds one interactive session's state.
type Shell struct {
	lo     *frontend.Lowered
	solver *cfl.Solver
	store  *share.Store
	cache  *ptcache.Cache
	kern   *kernel.Prep // nil unless UseKernel was called
	budget int
	out    *bufio.Writer

	byName map[string]pag.NodeID

	// heat aggregates every query's budget attribution (the session solver
	// always profiles); last remembers the most recent result per node so
	// `autopsy` can dissect it without re-solving.
	heat *autopsy.Collector
	last map[pag.NodeID]cfl.Result

	// sink receives counters, histograms and spans; nil until SetObs or the
	// first `trace on`. traceFile is the pending span-trace destination set
	// by `trace on <file>`, flushed by `trace off` or session end.
	sink      *obs.Sink
	traceFile string
}

// New creates a shell over a lowered program. Queries run with the given
// budget and with data sharing and result caching enabled (the session is
// long-lived, so the caches pay off across commands).
func New(lo *frontend.Lowered, budget int, out io.Writer) *Shell {
	store := share.NewStore(share.DefaultConfig())
	cache := ptcache.New(64)
	sh := &Shell{
		lo:     lo,
		store:  store,
		cache:  cache,
		budget: budget,
		out:    bufio.NewWriter(out),
		byName: map[string]pag.NodeID{},
		heat:   autopsy.NewCollector(lo.Graph, budget),
		last:   map[pag.NodeID]cfl.Result{},
	}
	sh.rebuildSolver()
	for id := 0; id < lo.Graph.NumNodes(); id++ {
		sh.byName[lo.Graph.Node(pag.NodeID(id)).Name] = pag.NodeID(id)
	}
	return sh
}

// rebuildSolver recreates the session solver from the current store, cache,
// sink and kernel prep (solvers are stateless between queries, so a rebuild
// never loses warm state — that lives in the store and cache).
func (sh *Shell) rebuildSolver() {
	sh.solver = cfl.New(sh.lo.Graph, cfl.Config{
		Budget:  sh.budget,
		Share:   sh.store,
		Cache:   sh.cache,
		Kernel:  sh.kern,
		Obs:     sh.sink,
		Worker:  0,
		Profile: true,
	})
}

// UseKernel switches the session onto the preprocessed traversal kernel
// (internal/kernel), building it once here. Answers are identical either
// way; only the traversal's data layout (and throughput) changes.
func (sh *Shell) UseKernel() {
	sh.kern = kernel.Build(sh.lo.Graph)
	sh.rebuildSolver()
}

// SetObs attaches an observability sink (nil-safe) to the session's jmp
// store, result cache and solver, so a debug endpoint can watch jmp
// insertions, cache hit-rates, query latency histograms and (when span
// tracing is enabled) per-traversal spans live. The solver is rebuilt so
// spans attribute to worker 0; the jmp store and result cache carry over.
func (sh *Shell) SetObs(sink *obs.Sink) {
	sh.sink = sink
	sh.store.SetObs(sink)
	sh.cache.SetObs(sink)
	sink.AttachHeat(sh.heat)
	sh.rebuildSolver()
}

// Obs returns the attached observability sink (nil when none was set).
func (sh *Shell) Obs() *obs.Sink { return sh.sink }

// Heat returns the session's autopsy collector (always non-nil); cmd/parcfl
// serialises it on exit for -heat-out/-autopsy-out.
func (sh *Shell) Heat() *autopsy.Collector { return sh.heat }

// Banner prints the session header.
func (sh *Shell) Banner() {
	fmt.Fprintf(sh.out, "loaded: %d nodes, %d edges, %d queryable locals; type `help`\n",
		sh.lo.Graph.NumNodes(), sh.lo.Graph.NumEdges(), len(sh.lo.AppQueryVars))
	sh.out.Flush()
}

// Run reads commands from in until EOF or quit.
func (sh *Shell) Run(in io.Reader) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(sh.out, "> ")
		sh.out.Flush()
		if !sc.Scan() {
			fmt.Fprintln(sh.out)
			sh.flushTrace()
			sh.out.Flush()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			sh.flushTrace()
			sh.out.Flush()
			return
		}
		sh.Execute(line)
		sh.out.Flush()
	}
}

// traceCmd implements `trace on <file>` / `trace off`. Tracing can start and
// stop repeatedly within one session; each `trace off` (or session end with
// tracing active) writes the spans collected since the matching `trace on`.
func (sh *Shell) traceCmd(args []string) {
	switch {
	case len(args) == 2 && args[0] == "on":
		if sh.sink == nil {
			sh.SetObs(obs.New(obs.Config{Workers: 1, TraceCap: 1 << 16}))
		}
		sh.sink.EnableSpans(1, 1<<16)
		sh.traceFile = args[1]
		fmt.Fprintf(sh.out, "tracing to %s (stop with `trace off` or quit)\n", sh.traceFile)
	case len(args) == 1 && args[0] == "off":
		if sh.traceFile == "" {
			fmt.Fprintln(sh.out, "tracing is not on")
			return
		}
		sh.flushTrace()
	default:
		fmt.Fprintln(sh.out, "usage: trace on <file> | trace off")
	}
}

// recordCmd implements `record on [interval]` / `record off`: the session's
// flight recorder (see obs.Recorder). The recorder stays attached to the
// sink after `record off`, so a later trace export still merges its history
// as Perfetto counter tracks; `record on` again replaces it with a fresh one.
func (sh *Shell) recordCmd(args []string) {
	switch {
	case len(args) >= 1 && args[0] == "on":
		iv := obs.DefaultSampleInterval
		if len(args) == 2 {
			d, err := time.ParseDuration(args[1])
			if err != nil || d <= 0 {
				fmt.Fprintf(sh.out, "bad interval %q (want e.g. 50ms)\n", args[1])
				return
			}
			iv = d
		}
		if sh.sink == nil {
			sh.SetObs(obs.New(obs.Config{Workers: 1, TraceCap: 1 << 16}))
		}
		if rec := sh.sink.FlightRecorder(); rec.Running() {
			fmt.Fprintf(sh.out, "already recording (every %v); `record off` first\n", rec.Interval())
			return
		}
		rec := obs.NewRecorder(sh.sink, obs.RecorderConfig{Interval: iv})
		sh.sink.AttachRecorder(rec)
		rec.Start()
		fmt.Fprintf(sh.out, "flight recorder on (sampling every %v; watch /debug/timeseries, stop with `record off`)\n", iv)
	case len(args) == 1 && args[0] == "off":
		rec := sh.sink.FlightRecorder()
		if rec == nil {
			fmt.Fprintln(sh.out, "flight recorder is not on")
			return
		}
		rec.Stop()
		ts := rec.Snapshot()
		fmt.Fprintf(sh.out, "flight recorder off: %d points x %d series (%d overwritten)\n",
			len(ts.Points), len(ts.Series), ts.Dropped)
	default:
		fmt.Fprintln(sh.out, "usage: record on [interval] | record off")
	}
}

// autopsyCmd implements `autopsy <var>`: a structured budget post-mortem of
// the most recent query on that node (re-solving if none was issued yet) —
// outcome, step breakdown, the unfinished jmp that fired an early
// termination, the partial frontier, and the dominant nodes and fields.
func (sh *Shell) autopsyCmd(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(sh.out, "usage: autopsy <var>")
		return
	}
	v, ok := sh.node(args[0])
	if !ok {
		return
	}
	r, seen := sh.last[v]
	if !seen {
		r = sh.solver.PointsTo(v, pag.EmptyContext)
		sh.record(r)
	}
	rep := autopsy.FromResult(sh.lo.Graph, sh.budget, &r)
	if rep == nil {
		fmt.Fprintln(sh.out, "no attribution recorded for this query")
		return
	}
	if err := rep.WriteText(sh.out); err != nil {
		fmt.Fprintf(sh.out, "autopsy: %v\n", err)
	}
}

// heatCmd implements `heat [top-k]` and `heat dot <file>` over the session's
// accumulated budget attribution.
func (sh *Shell) heatCmd(args []string) {
	if len(args) == 2 && args[0] == "dot" {
		f, err := os.Create(args[1])
		if err != nil {
			fmt.Fprintf(sh.out, "heat dot: %v\n", err)
			return
		}
		err = sh.lo.Graph.WriteDOTOpts(f, sh.heat.DOTOptions(sh.store))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(sh.out, "heat dot: %v\n", err)
			return
		}
		fmt.Fprintf(sh.out, "heat overlay written to %s\n", args[1])
		return
	}
	k := 10
	if len(args) == 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			fmt.Fprintln(sh.out, "usage: heat [top-k] | heat dot <file>")
			return
		}
		k = n
	} else if len(args) > 1 {
		fmt.Fprintln(sh.out, "usage: heat [top-k] | heat dot <file>")
		return
	}
	h := sh.heat.Heat()
	if h.Queries == 0 {
		fmt.Fprintln(sh.out, "no queries profiled yet (run pts/flows first)")
		return
	}
	fmt.Fprintf(sh.out, "queries   %d (%d completed, %d aborted, %d early-terminated)\n",
		h.Queries, h.Completed, h.Aborted, h.EarlyTerminated)
	fmt.Fprintf(sh.out, "steps     %d total, %d attributed\n", h.TotalSteps, h.AttributedSteps)
	fmt.Fprintf(sh.out, "breakdown traversal=%d match=%d approx=%d jmp=%d cache=%d\n",
		h.TraversalSteps, h.MatchSteps, h.ApproxSteps, h.JmpSteps, h.CacheSteps)
	if len(h.Nodes) > 0 {
		fmt.Fprintln(sh.out, "hot nodes")
		for i, n := range h.Nodes {
			if i >= k {
				break
			}
			fmt.Fprintf(sh.out, "  %-40s %8d steps  %5.1f%%\n", n.Name, n.Steps, n.Share*100)
		}
	}
	if len(h.Fields) > 0 {
		fmt.Fprintln(sh.out, "hot fields")
		for i, f := range h.Fields {
			if i >= k {
				break
			}
			fmt.Fprintf(sh.out, "  %-40s %8d steps\n", f.Label, f.Steps)
		}
	}
	if len(h.Jmp) > 0 {
		fmt.Fprintln(sh.out, "jmp store")
		for i, j := range h.Jmp {
			if i >= k {
				break
			}
			fmt.Fprintf(sh.out, "  %s(%s, %s): %d takes (%d steps), %d expands",
				j.Dir, j.Name, j.Ctx, j.Takes, j.StepsCharged, j.Expands)
			if j.ETs > 0 {
				fmt.Fprintf(sh.out, ", %d ETs (s=%d)", j.ETs, j.S)
			}
			fmt.Fprintln(sh.out)
		}
	}
}

// flushTrace writes and clears the pending trace file, if any.
func (sh *Shell) flushTrace() {
	if sh.traceFile == "" || sh.sink == nil {
		return
	}
	file := sh.traceFile
	sh.traceFile = ""
	if err := obs.WriteTraceFile(file, sh.sink); err != nil {
		fmt.Fprintf(sh.out, "trace: %v\n", err)
	} else {
		fmt.Fprintf(sh.out, "trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", file)
	}
	sh.sink.DisableSpans()
}

// record folds a query result into the session heat profile and remembers
// it for `autopsy`.
func (sh *Shell) record(r cfl.Result) {
	sh.heat.Record(&r)
	sh.last[r.Node] = r
}

func (sh *Shell) node(name string) (pag.NodeID, bool) {
	id, ok := sh.byName[name]
	if !ok {
		fmt.Fprintf(sh.out, "unknown node %q (try `vars` or `objs`)\n", name)
	}
	return id, ok
}

func (sh *Shell) printSet(prefix string, r cfl.Result) {
	status := ""
	if r.Aborted {
		status = " [out of budget — partial]"
	}
	fmt.Fprintf(sh.out, "%s{", prefix)
	for i, o := range r.Objects() {
		if i > 0 {
			fmt.Fprint(sh.out, ", ")
		}
		fmt.Fprint(sh.out, sh.lo.Graph.Node(o).Name)
	}
	fmt.Fprintf(sh.out, "}  (%d steps%s)\n", r.Steps, status)
}

// Execute runs a single command line.
func (sh *Shell) Execute(line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprint(sh.out, `commands:
  pts <var>             points-to set of a variable
  flows <obj>           variables an allocation site flows to
  alias <var> <var>     may-alias check
  explain <var> <obj>   why does var point to obj?
  explainflows <obj> <var>  why does obj flow to var?
  autopsy <var>         budget post-mortem of the last query on var
  heat [top-k]          session PAG heat profile (budget attribution)
  heat dot <file>       write the PAG with heat/jmp overlays as DOT
  vars [substr]         list queryable variables (filtered)
  objs [substr]         list allocation sites (filtered)
  stats                 graph and session statistics
  trace on <file>       start span tracing; write Chrome trace JSON to file
  trace off             stop tracing and write the pending trace file
  record on [interval]  start the flight recorder (default 50ms sampling)
  record off            stop the flight recorder
  quit
`)
	case "trace":
		sh.traceCmd(args)
	case "record":
		sh.recordCmd(args)
	case "pts":
		if len(args) != 1 {
			fmt.Fprintln(sh.out, "usage: pts <var>")
			return
		}
		if v, ok := sh.node(args[0]); ok {
			t0 := sh.sink.Now()
			r := sh.solver.PointsTo(v, pag.EmptyContext)
			if sh.sink.Enabled() {
				sh.sink.Observe(obs.HistQueryNS, sh.sink.Now()-t0)
				sh.sink.Observe(obs.HistQuerySteps, int64(r.Steps))
				sh.sink.Span(obs.SpQuery, 0, t0, int64(v), int64(r.Steps), int64(r.JumpsTaken))
			}
			sh.record(r)
			sh.printSet(fmt.Sprintf("pts(%s) = ", args[0]), r)
			if r.Aborted {
				fmt.Fprintf(sh.out, "(dissect with `autopsy %s`)\n", args[0])
			}
		}
	case "flows":
		if len(args) != 1 {
			fmt.Fprintln(sh.out, "usage: flows <obj>")
			return
		}
		if o, ok := sh.node(args[0]); ok {
			r := sh.solver.FlowsTo(o, pag.EmptyContext)
			sh.record(r)
			fmt.Fprintf(sh.out, "flowsTo(%s) = {", args[0])
			seen := map[pag.NodeID]bool{}
			first := true
			for _, nc := range r.PointsTo {
				if seen[nc.Node] {
					continue
				}
				seen[nc.Node] = true
				if !first {
					fmt.Fprint(sh.out, ", ")
				}
				first = false
				fmt.Fprint(sh.out, sh.lo.Graph.Node(nc.Node).Name)
			}
			fmt.Fprintf(sh.out, "}  (%d steps)\n", r.Steps)
		}
	case "alias":
		if len(args) != 2 {
			fmt.Fprintln(sh.out, "usage: alias <var> <var>")
			return
		}
		a, ok1 := sh.node(args[0])
		b, ok2 := sh.node(args[1])
		if ok1 && ok2 {
			al, exact := sh.solver.Alias(a, b, pag.EmptyContext)
			note := ""
			if !exact {
				note = " (budget-bounded; may-alias over-approximation)"
			}
			fmt.Fprintf(sh.out, "alias(%s, %s) = %v%s\n", args[0], args[1], al, note)
		}
	case "explain":
		if len(args) != 2 {
			fmt.Fprintln(sh.out, "usage: explain <var> <obj>")
			return
		}
		v, ok1 := sh.node(args[0])
		o, ok2 := sh.node(args[1])
		if !ok1 || !ok2 {
			return
		}
		steps, ok := sh.solver.Explain(v, pag.EmptyContext, o)
		if !ok {
			fmt.Fprintf(sh.out, "%s does not point to %s\n", args[0], args[1])
			return
		}
		for i, st := range steps {
			arrow := ""
			if i > 0 {
				arrow = fmt.Sprintf("  <-%s- ", st.Edge)
			}
			fmt.Fprintf(sh.out, "%s%s%s\n", strings.Repeat(" ", i), arrow, sh.lo.Graph.Node(st.Node).Name)
		}
	case "explainflows":
		if len(args) != 2 {
			fmt.Fprintln(sh.out, "usage: explainflows <obj> <var>")
			return
		}
		o, ok1 := sh.node(args[0])
		v, ok2 := sh.node(args[1])
		if !ok1 || !ok2 {
			return
		}
		steps, ok := sh.solver.ExplainFlows(o, pag.EmptyContext, v)
		if !ok {
			fmt.Fprintf(sh.out, "%s does not flow to %s\n", args[0], args[1])
			return
		}
		for i, st := range steps {
			arrow := ""
			if i > 0 {
				arrow = fmt.Sprintf("  -%s-> ", st.Edge)
			}
			fmt.Fprintf(sh.out, "%s%s%s\n", strings.Repeat(" ", i), arrow, sh.lo.Graph.Node(st.Node).Name)
		}
	case "autopsy":
		sh.autopsyCmd(args)
	case "heat":
		sh.heatCmd(args)
	case "vars", "objs":
		substr := ""
		if len(args) > 0 {
			substr = args[0]
		}
		count := 0
		for id := 0; id < sh.lo.Graph.NumNodes() && count < 40; id++ {
			n := sh.lo.Graph.Node(pag.NodeID(id))
			isVar := n.Kind.IsVariable()
			if (cmd == "vars") != isVar {
				continue
			}
			if n.Kind == pag.KindUnfinished || !strings.Contains(n.Name, substr) {
				continue
			}
			fmt.Fprintln(sh.out, " ", n.Name)
			count++
		}
		if count == 40 {
			fmt.Fprintln(sh.out, "  ... (filter with a substring)")
		}
	case "stats":
		g := sh.lo.Graph
		fmt.Fprintf(sh.out, "graph: %d nodes, %d edges, %d fields, %d call sites\n",
			g.NumNodes(), g.NumEdges(), len(g.Fields()), g.NumCallSites())
		fmt.Fprintf(sh.out, "budget: %d steps/query\n", sh.budget)
		if rec := sh.sink.FlightRecorder(); rec != nil {
			ts := rec.Snapshot()
			state := "stopped"
			if rec.Running() {
				state = fmt.Sprintf("sampling every %v", rec.Interval())
			}
			fmt.Fprintf(sh.out, "flight recorder: %s, %d points x %d series\n",
				state, len(ts.Points), len(ts.Series))
		}
	default:
		fmt.Fprintf(sh.out, "unknown command %q (try `help`)\n", cmd)
	}
}
