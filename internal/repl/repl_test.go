package repl

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parcfl/internal/frontend"
)

func fig2Shell(t *testing.T) (*Shell, *bytes.Buffer, *frontend.Fig2) {
	t.Helper()
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	return New(f.Lowered, 75000, &buf), &buf, f
}

func TestPtsCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	sh.Execute("pts " + name)
	sh.out.Flush()
	out := buf.String()
	if !strings.Contains(out, "pts("+name+") = {") || !strings.Contains(out, "steps") {
		t.Fatalf("output: %q", out)
	}
	// Exactly one object in the set.
	if strings.Count(out, "o@") != 1 {
		t.Fatalf("pts(s1) output should contain exactly one allocation: %q", out)
	}
}

func TestFlowsCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	objName := f.Lowered.Graph.Node(f.O16).Name
	sh.Execute("flows " + objName)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "flowsTo("+objName+") = {") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestAliasCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	a := f.Lowered.Graph.Node(f.ThisVector).Name
	b := f.Lowered.Graph.Node(f.ThisGet).Name
	sh.Execute("alias " + a + " " + b)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "= true") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestExplainCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	v := f.Lowered.Graph.Node(f.S1).Name
	o := f.Lowered.Graph.Node(f.O16).Name
	sh.Execute("explain " + v + " " + o)
	sh.out.Flush()
	out := buf.String()
	if !strings.Contains(out, "<-new-") {
		t.Fatalf("explain output missing allocation hop: %q", out)
	}
	// Negative case.
	buf.Reset()
	sh.Execute("explain " + v + " " + f.Lowered.Graph.Node(f.O20).Name)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "does not point to") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestVarsObjsStatsHelp(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("vars main")
	sh.Execute("objs o@")
	sh.Execute("stats")
	sh.Execute("help")
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"main.v1", "o@main:0", "graph:", "commands:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestUnknownInputs(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("pts nosuchvar")
	sh.Execute("frobnicate")
	sh.Execute("pts")
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"unknown node", "unknown command", "usage: pts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestRunLoop(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.V1).Name
	in := strings.NewReader("\npts " + name + "\nquit\npts " + name + "\n")
	sh.Run(in)
	out := buf.String()
	if strings.Count(out, "pts("+name+")") != 1 {
		t.Fatalf("quit did not stop the loop: %q", out)
	}
}

func TestRunEOF(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Run(strings.NewReader("stats\n"))
	if !strings.Contains(buf.String(), "graph:") {
		t.Fatalf("output: %q", buf.String())
	}
}

// TestTraceCommand: `trace on <file>` records query spans and `trace off`
// writes a parseable Chrome trace-event file.
func TestTraceCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	path := filepath.Join(t.TempDir(), "trace.json")

	sh.Execute("trace on " + path)
	sh.Execute("pts " + name)
	sh.Execute("trace off")
	sh.out.Flush()

	if !strings.Contains(buf.String(), "trace written to "+path) {
		t.Fatalf("no confirmation: %q", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	queries := 0
	for _, ev := range tf.TraceEvents {
		if ev.Dur < 0 {
			t.Fatalf("negative duration: %+v", ev)
		}
		if ev.Name == "query" {
			queries++
		}
	}
	if queries != 1 {
		t.Fatalf("%d query spans, want 1", queries)
	}
	if sh.Obs().SpanTracing() {
		t.Fatal("trace off left spans enabled")
	}
}

// TestTraceCommandErrors: bad arguments and a stray `trace off` are
// reported, not fatal.
func TestTraceCommandErrors(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("trace")
	sh.Execute("trace off")
	sh.Execute("trace on")
	sh.out.Flush()
	out := buf.String()
	if strings.Count(out, "usage: trace") != 2 || !strings.Contains(out, "tracing is not on") {
		t.Fatalf("output: %q", out)
	}
}

// TestTraceFlushOnQuit: quitting with tracing active still writes the file.
func TestTraceFlushOnQuit(t *testing.T) {
	sh, _, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	path := filepath.Join(t.TempDir(), "trace.json")
	sh.Run(strings.NewReader("trace on " + path + "\npts " + name + "\nquit\n"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("quit did not flush the trace: %v", err)
	}
	if !strings.Contains(string(data), `"query"`) {
		t.Fatalf("flushed trace has no query span: %s", data)
	}
}
