package repl

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parcfl/internal/frontend"
)

func fig2Shell(t *testing.T) (*Shell, *bytes.Buffer, *frontend.Fig2) {
	t.Helper()
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	return New(f.Lowered, 75000, &buf), &buf, f
}

func TestPtsCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	sh.Execute("pts " + name)
	sh.out.Flush()
	out := buf.String()
	if !strings.Contains(out, "pts("+name+") = {") || !strings.Contains(out, "steps") {
		t.Fatalf("output: %q", out)
	}
	// Exactly one object in the set.
	if strings.Count(out, "o@") != 1 {
		t.Fatalf("pts(s1) output should contain exactly one allocation: %q", out)
	}
}

func TestFlowsCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	objName := f.Lowered.Graph.Node(f.O16).Name
	sh.Execute("flows " + objName)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "flowsTo("+objName+") = {") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestAliasCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	a := f.Lowered.Graph.Node(f.ThisVector).Name
	b := f.Lowered.Graph.Node(f.ThisGet).Name
	sh.Execute("alias " + a + " " + b)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "= true") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestExplainCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	v := f.Lowered.Graph.Node(f.S1).Name
	o := f.Lowered.Graph.Node(f.O16).Name
	sh.Execute("explain " + v + " " + o)
	sh.out.Flush()
	out := buf.String()
	if !strings.Contains(out, "<-new-") {
		t.Fatalf("explain output missing allocation hop: %q", out)
	}
	// Negative case.
	buf.Reset()
	sh.Execute("explain " + v + " " + f.Lowered.Graph.Node(f.O20).Name)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "does not point to") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestVarsObjsStatsHelp(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("vars main")
	sh.Execute("objs o@")
	sh.Execute("stats")
	sh.Execute("help")
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"main.v1", "o@main:0", "graph:", "commands:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestUnknownInputs(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("pts nosuchvar")
	sh.Execute("frobnicate")
	sh.Execute("pts")
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"unknown node", "unknown command", "usage: pts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestRunLoop(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.V1).Name
	in := strings.NewReader("\npts " + name + "\nquit\npts " + name + "\n")
	sh.Run(in)
	out := buf.String()
	if strings.Count(out, "pts("+name+")") != 1 {
		t.Fatalf("quit did not stop the loop: %q", out)
	}
}

func TestRunEOF(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Run(strings.NewReader("stats\n"))
	if !strings.Contains(buf.String(), "graph:") {
		t.Fatalf("output: %q", buf.String())
	}
}

// TestTraceCommand: `trace on <file>` records query spans and `trace off`
// writes a parseable Chrome trace-event file.
func TestTraceCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	path := filepath.Join(t.TempDir(), "trace.json")

	sh.Execute("trace on " + path)
	sh.Execute("pts " + name)
	sh.Execute("trace off")
	sh.out.Flush()

	if !strings.Contains(buf.String(), "trace written to "+path) {
		t.Fatalf("no confirmation: %q", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	queries := 0
	for _, ev := range tf.TraceEvents {
		if ev.Dur < 0 {
			t.Fatalf("negative duration: %+v", ev)
		}
		if ev.Name == "query" {
			queries++
		}
	}
	if queries != 1 {
		t.Fatalf("%d query spans, want 1", queries)
	}
	if sh.Obs().SpanTracing() {
		t.Fatal("trace off left spans enabled")
	}
}

// TestTraceCommandErrors: bad arguments and a stray `trace off` are
// reported, not fatal.
func TestTraceCommandErrors(t *testing.T) {
	sh, buf, _ := fig2Shell(t)
	sh.Execute("trace")
	sh.Execute("trace off")
	sh.Execute("trace on")
	sh.out.Flush()
	out := buf.String()
	if strings.Count(out, "usage: trace") != 2 || !strings.Contains(out, "tracing is not on") {
		t.Fatalf("output: %q", out)
	}
}

// TestTraceFlushOnQuit: quitting with tracing active still writes the file.
func TestTraceFlushOnQuit(t *testing.T) {
	sh, _, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	path := filepath.Join(t.TempDir(), "trace.json")
	sh.Run(strings.NewReader("trace on " + path + "\npts " + name + "\nquit\n"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("quit did not flush the trace: %v", err)
	}
	if !strings.Contains(string(data), `"query"`) {
		t.Fatalf("flushed trace has no query span: %s", data)
	}
}

func TestExplainFlowsCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	objName := f.Lowered.Graph.Node(f.O16).Name
	varName := f.Lowered.Graph.Node(f.S1).Name
	sh.Execute("explainflows " + objName + " " + varName)
	sh.out.Flush()
	out := buf.String()
	if !strings.Contains(out, objName) || !strings.Contains(out, varName) {
		t.Fatalf("witness missing endpoints: %q", out)
	}
	if !strings.Contains(out, "->") {
		t.Fatalf("witness has no forward edges: %q", out)
	}

	// A pair with no flow reports cleanly.
	buf.Reset()
	otherVar := f.Lowered.Graph.Node(f.S2).Name
	sh.Execute("explainflows " + objName + " " + otherVar)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "does not flow to") {
		t.Fatalf("output: %q", buf.String())
	}

	// Usage and unknown-node errors match explain's handling.
	buf.Reset()
	sh.Execute("explainflows " + objName)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "usage: explainflows <obj> <var>") {
		t.Fatalf("output: %q", buf.String())
	}
	buf.Reset()
	sh.Execute("explainflows nosuch " + varName)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "unknown node") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestAutopsyCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	name := f.Lowered.Graph.Node(f.S1).Name
	sh.Execute("pts " + name)
	buf.Reset()
	sh.Execute("autopsy " + name)
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"query", name, "outcome", "completed", "breakdown", "traversal="} {
		if !strings.Contains(out, want) {
			t.Fatalf("autopsy output missing %q: %q", want, out)
		}
	}

	// Without a prior query the command solves on demand.
	buf.Reset()
	other := f.Lowered.Graph.Node(f.S2).Name
	sh.Execute("autopsy " + other)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "outcome") {
		t.Fatalf("on-demand autopsy output: %q", buf.String())
	}

	buf.Reset()
	sh.Execute("autopsy")
	sh.out.Flush()
	if !strings.Contains(buf.String(), "usage: autopsy <var>") {
		t.Fatalf("output: %q", buf.String())
	}
}

// TestAutopsyAborted: with a starvation budget the autopsy names the
// shortfall surface — aborted outcome and (with sharing) a frontier.
func TestAutopsyAborted(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := New(f.Lowered, 12, &buf)
	name := f.Lowered.Graph.Node(f.S1).Name
	sh.Execute("pts " + name)
	out := buf.String()
	if !strings.Contains(out, "partial") {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	if !strings.Contains(out, "autopsy "+name) {
		t.Fatalf("aborted pts does not point at autopsy: %q", out)
	}
	buf.Reset()
	sh.Execute("autopsy " + name)
	sh.out.Flush()
	out = buf.String()
	if !strings.Contains(out, "aborted") && !strings.Contains(out, "early-terminated") {
		t.Fatalf("autopsy of aborted query: %q", out)
	}
	if !strings.Contains(out, "of budget 12") {
		t.Fatalf("autopsy does not show the budget: %q", out)
	}
}

func TestHeatCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	buf.Reset()
	sh.Execute("heat")
	sh.out.Flush()
	if !strings.Contains(buf.String(), "no queries profiled yet") {
		t.Fatalf("empty-session heat: %q", buf.String())
	}

	sh.Execute("pts " + f.Lowered.Graph.Node(f.S1).Name)
	sh.Execute("flows " + f.Lowered.Graph.Node(f.O16).Name)
	buf.Reset()
	sh.Execute("heat 3")
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{"queries   2", "hot nodes", "hot fields", "breakdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heat output missing %q: %q", want, out)
		}
	}
	// total == attributed (conservation), both rendered on the steps line.
	h := sh.heat.Heat()
	if h.TotalSteps != h.AttributedSteps {
		t.Fatalf("session heat not conserved: %+v", h)
	}

	buf.Reset()
	sh.Execute("heat nope")
	sh.out.Flush()
	if !strings.Contains(buf.String(), "usage: heat") {
		t.Fatalf("output: %q", buf.String())
	}
}

func TestHeatDotCommand(t *testing.T) {
	sh, buf, f := fig2Shell(t)
	sh.Execute("pts " + f.Lowered.Graph.Node(f.S1).Name)
	path := filepath.Join(t.TempDir(), "heat.dot")
	buf.Reset()
	sh.Execute("heat dot " + path)
	sh.out.Flush()
	if !strings.Contains(buf.String(), "heat overlay written to") {
		t.Fatalf("output: %q", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph pag") || !strings.Contains(string(data), "fillcolor=\"#ff") {
		t.Fatalf("dot file lacks heat overlay:\n%s", data)
	}
}
