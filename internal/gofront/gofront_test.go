package gofront

import (
	"strings"
	"testing"

	"parcfl/internal/andersen"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

func analyze(t *testing.T, src string) (*frontend.Program, *frontend.Lowered, *cfl.Solver) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, lo, cfl.New(lo.Graph, cfl.Config{})
}

// localOf finds the PAG node of a named local in a named function.
func localOf(t *testing.T, p *frontend.Program, lo *frontend.Lowered, fn, local string) pag.NodeID {
	t.Helper()
	for mi := range p.Methods {
		if p.Methods[mi].Name != fn {
			continue
		}
		for li, lv := range p.Methods[mi].Locals {
			if lv.Name == local {
				return lo.LocalNode[mi][li]
			}
		}
	}
	t.Fatalf("no local %s.%s", fn, local)
	return 0
}

// TestGoVectorExample: the paper's Fig. 2 scenario written as Go.
func TestGoVectorExample(t *testing.T) {
	src := `
package main

type Vector struct {
	elems []interface{}
}

func push(v *Vector, e *Item)  { v.elems = append(v.elems, e) }
func pop(v *Vector) *Item      { return v.elems[0].(*Item) }

type Item struct{ tag int }
`
	// Type assertions are unsupported; write the subset version instead.
	_ = src
	subset := `
package main

type Item struct{ tag int }
type Vector struct{ elems []*Item }

func push(v *Vector, e *Item) {
	v.elems = append(v.elems, e)
}
func pop(v *Vector) *Item {
	return v.elems[0]
}
func main() {
	v1 := &Vector{elems: []*Item{}}
	n1 := &Item{}
	push(v1, n1)
	s1 := pop(v1)

	v2 := &Vector{elems: []*Item{}}
	n2 := &Item{}
	push(v2, n2)
	s2 := pop(v2)
	_ = s1
	_ = s2
}
`
	p, lo, s := analyze(t, subset)
	s1 := localOf(t, p, lo, "main", "s1")
	s2 := localOf(t, p, lo, "main", "s2")
	r1 := s.PointsTo(s1, pag.EmptyContext)
	r2 := s.PointsTo(s2, pag.EmptyContext)
	if len(r1.Objects()) != 1 || len(r2.Objects()) != 1 {
		t.Fatalf("pts sizes: %d, %d (want 1,1 — context-sensitive separation)",
			len(r1.Objects()), len(r2.Objects()))
	}
	if r1.Objects()[0] == r2.Objects()[0] {
		t.Fatal("s1 and s2 conflated through the shared Vector code")
	}
	// And they must not alias.
	if al, _ := s.Alias(s1, s2, pag.EmptyContext); al {
		t.Fatal("alias(s1, s2) = true")
	}
}

func TestGoCompositeLiteralFields(t *testing.T) {
	src := `
package main

type Inner struct{ x int }
type Outer struct{ in *Inner }

func main() {
	i := &Inner{}
	o := &Outer{in: i}
	got := o.in
	_ = got
}
`
	p, lo, s := analyze(t, src)
	got := localOf(t, p, lo, "main", "got")
	r := s.PointsTo(got, pag.EmptyContext)
	if len(r.Objects()) != 1 {
		t.Fatalf("pts(got) = %v", r.Objects())
	}
}

func TestGoSlicesAndRange(t *testing.T) {
	src := `
package main

type T struct{ n int }

func main() {
	xs := []*T{&T{}, &T{}}
	xs = append(xs, new(T))
	var last *T
	for _, v := range xs {
		last = v
	}
	first := xs[0]
	_ = first
	_ = last
}
`
	p, lo, s := analyze(t, src)
	last := localOf(t, p, lo, "main", "last")
	r := s.PointsTo(last, pag.EmptyContext)
	// All three allocations flow through the collapsed element field.
	if len(r.Objects()) != 3 {
		t.Fatalf("pts(last) = %d objects, want 3", len(r.Objects()))
	}
	first := localOf(t, p, lo, "main", "first")
	if got := s.PointsTo(first, pag.EmptyContext).Objects(); len(got) != 3 {
		t.Fatalf("pts(first) = %d objects, want 3 (collapsed elements)", len(got))
	}
}

func TestGoGlobals(t *testing.T) {
	src := `
package main

type Conn struct{ id int }

var current *Conn

func set() { current = &Conn{} }
func get() *Conn {
	return current
}
func main() {
	set()
	c := get()
	_ = c
}
`
	p, lo, s := analyze(t, src)
	c := localOf(t, p, lo, "main", "c")
	if got := s.PointsTo(c, pag.EmptyContext).Objects(); len(got) != 1 {
		t.Fatalf("pts(c) = %v", got)
	}
}

func TestGoIfElseFlattening(t *testing.T) {
	src := `
package main

type T struct{ n int }

func main() {
	var x *T
	if true {
		x = &T{}
	} else if false {
		x = &T{}
	} else {
		x = new(T)
	}
	_ = x
}
`
	p, lo, s := analyze(t, src)
	x := localOf(t, p, lo, "main", "x")
	if got := s.PointsTo(x, pag.EmptyContext).Objects(); len(got) != 3 {
		t.Fatalf("pts(x) = %d, want 3 (flow-insensitive)", len(got))
	}
}

// TestGoSoundVsAndersen: the Go lowering preserves the Andersen superset
// relation.
func TestGoSoundVsAndersen(t *testing.T) {
	src := `
package main

type Node struct{ next *Node }

func main() {
	head := &Node{}
	tail := &Node{}
	head.next = tail
	tail.next = tail
	p := head
	for i := 0; i < 10; i++ {
		p = p.next
	}
	_ = p
}
`
	p, lo, s := analyze(t, src)
	and := andersen.Analyze(lo.Graph)
	for mi := range p.Methods {
		for li := range p.Methods[mi].Locals {
			v := lo.LocalNode[mi][li]
			super := and.PointsToSet(v)
			for _, o := range s.PointsTo(v, pag.EmptyContext).Objects() {
				if !super[o] {
					t.Fatalf("%s.%s: CFL fact not in Andersen", p.Methods[mi].Name, p.Methods[mi].Locals[li].Name)
				}
			}
		}
	}
	// The linked-list walk must find both nodes.
	pv := localOf(t, p, lo, "main", "p")
	if got := s.PointsTo(pv, pag.EmptyContext).Objects(); len(got) != 2 {
		t.Fatalf("pts(p) = %d, want both list nodes", len(got))
	}
}

func TestGoUnsupportedConstructs(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"method", "package m\ntype T struct{}\nfunc (t *T) f() {}", "methods are unsupported"},
		{"multi-result", "package m\nfunc f() (int, int) { return 1, 2 }", "multiple results"},
		{"addr of var", "package m\ntype T struct{}\nfunc f() { var x T; p := &x; _ = p }", "&x of variables"},
		{"goroutine", "package m\nfunc g() {}\nfunc f() { go g() }", "unsupported statement"},
		{"unknown func", "package m\nfunc f() { h() }", "unknown function"},
		{"pkg var init", "package m\ntype T struct{}\nvar G *T = nil", "initialisers are unsupported"},
		{"syntax", "package m\nfunc {", "expected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}
