// Package gofront lowers a (well-defined subset of) Go source onto the
// analysis PAG, so the library can answer points-to, alias and flows-to
// queries about actual Go code. It demonstrates that the paper's machinery
// is frontend-agnostic: like the Java (mjlang) and C (cfront) frontends, it
// only has to produce the seven PAG edge kinds.
//
// Supported subset (checked syntactically; unsupported constructs are
// rejected with positioned errors rather than silently mis-modelled):
//
//   - struct type declarations whose fields are pointers to structs,
//     structs, slices, or (ignored) basic types;
//   - package-level `var` declarations of pointer/struct/slice type;
//   - plain functions (no methods) with pointer/struct/slice parameters
//     and at most one result;
//   - statements: x := expr, x = expr, x.f = expr, x[i] = expr, calls,
//     return, and if/else/for blocks (flattened — the analysis is
//     flow-insensitive);
//   - expressions: &T{...} and []T{...} composite literals (with field and
//     element initialisers), new(T), append(s, v...), identifiers, field
//     selections x.f.g, indexing s[i], and calls f(args).
//
// Pointers and values of struct type are modelled uniformly as references
// (the analysis tracks heap objects, not Go's value semantics — a
// documented over-approximation). Slices are modelled like the paper
// models Java arrays: all elements collapse into one pseudo-field.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	gotoken "go/token"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// Parse lowers Go source text (one file, package clause required) to a
// frontend Program. Every function is marked Application (queries target
// all locals).
func Parse(src string) (*frontend.Program, error) {
	fset := gotoken.NewFileSet()
	file, err := parser.ParseFile(fset, "input.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	tr := &translator{
		fset:     fset,
		prog:     &frontend.Program{},
		typeIdx:  map[string]pag.TypeID{},
		sliceIdx: map[pag.TypeID]pag.TypeID{},
		globIdx:  map[string]int{},
		funcIdx:  map[string]int{},
	}
	return tr.run(file)
}

type translator struct {
	fset *gotoken.FileSet
	prog *frontend.Program

	typeIdx  map[string]pag.TypeID
	sliceIdx map[pag.TypeID]pag.TypeID // element type -> slice type
	globIdx  map[string]int
	funcIdx  map[string]int

	nextField pag.FieldID
	prim      pag.TypeID // shared primitive type, created lazily
	primSet   bool
}

func (tr *translator) errAt(pos gotoken.Pos, format string, args ...any) error {
	p := tr.fset.Position(pos)
	return fmt.Errorf("%d:%d: %s", p.Line, p.Column, fmt.Sprintf(format, args...))
}

// primitive returns the shared primitive TypeID.
func (tr *translator) primitive() pag.TypeID {
	if !tr.primSet {
		tr.prim = pag.TypeID(len(tr.prog.Types))
		tr.prog.Types = append(tr.prog.Types, frontend.Type{Name: "<basic>"})
		tr.primSet = true
	}
	return tr.prim
}

// sliceOf returns (creating on demand) the slice type of elem, whose
// collapsed element field is pag.ArrField.
func (tr *translator) sliceOf(elem pag.TypeID) pag.TypeID {
	if id, ok := tr.sliceIdx[elem]; ok {
		return id
	}
	id := pag.TypeID(len(tr.prog.Types))
	tr.prog.Types = append(tr.prog.Types, frontend.Type{
		Name: "[]" + tr.prog.Types[elem].Name,
		Ref:  true,
		Fields: []frontend.Field{
			{Name: "elem", ID: pag.ArrField, Type: elem},
		},
	})
	tr.sliceIdx[elem] = id
	return id
}

// resolveType maps a type expression to a TypeID. Pointers to structs and
// structs map to the struct's type; slices map to slice types; basic types
// map to the shared primitive.
func (tr *translator) resolveType(e ast.Expr) (pag.TypeID, error) {
	switch t := e.(type) {
	case *ast.Ident:
		if id, ok := tr.typeIdx[t.Name]; ok {
			return id, nil
		}
		// Any unknown identifier type (int, string, ...) is primitive.
		return tr.primitive(), nil
	case *ast.StarExpr:
		return tr.resolveType(t.X)
	case *ast.ArrayType:
		elem, err := tr.resolveType(t.Elt)
		if err != nil {
			return 0, err
		}
		return tr.sliceOf(elem), nil
	default:
		return 0, tr.errAt(e.Pos(), "unsupported type expression %T", e)
	}
}

func (tr *translator) run(file *ast.File) (*frontend.Program, error) {
	// Pass 1: struct type names.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != gotoken.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts := spec.(*ast.TypeSpec)
			if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
				continue // non-struct named types treated as primitive
			}
			if _, dup := tr.typeIdx[ts.Name.Name]; dup {
				return nil, tr.errAt(ts.Pos(), "type %s redeclared", ts.Name.Name)
			}
			id := pag.TypeID(len(tr.prog.Types))
			tr.typeIdx[ts.Name.Name] = id
			tr.prog.Types = append(tr.prog.Types, frontend.Type{Name: ts.Name.Name, Ref: true})
		}
	}
	// Pass 2: struct fields.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != gotoken.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts := spec.(*ast.TypeSpec)
			st, isStruct := ts.Type.(*ast.StructType)
			if !isStruct {
				continue
			}
			id := tr.typeIdx[ts.Name.Name]
			for _, fld := range st.Fields.List {
				ftid, err := tr.resolveType(fld.Type)
				if err != nil {
					return nil, err
				}
				for _, name := range fld.Names {
					tr.nextField++
					tr.prog.Types[id].Fields = append(tr.prog.Types[id].Fields, frontend.Field{
						Name: name.Name, ID: tr.nextField, Type: ftid,
					})
				}
			}
		}
	}
	// Pass 3: globals.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != gotoken.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Type == nil {
				return nil, tr.errAt(vs.Pos(), "package-level var needs an explicit type")
			}
			tid, err := tr.resolveType(vs.Type)
			if err != nil {
				return nil, err
			}
			if len(vs.Values) > 0 {
				return nil, tr.errAt(vs.Pos(), "package-level var initialisers are unsupported; assign in a function")
			}
			for _, name := range vs.Names {
				tr.globIdx[name.Name] = len(tr.prog.Globals)
				tr.prog.Globals = append(tr.prog.Globals, frontend.GlobalVar{Name: name.Name, Type: tid})
			}
		}
	}
	// Pass 4: function signatures.
	var fnDecls []*ast.FuncDecl
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv != nil {
			return nil, tr.errAt(fd.Pos(), "methods are unsupported; use plain functions")
		}
		if _, dup := tr.funcIdx[fd.Name.Name]; dup {
			return nil, tr.errAt(fd.Pos(), "func %s redeclared", fd.Name.Name)
		}
		tr.funcIdx[fd.Name.Name] = len(tr.prog.Methods)
		m := frontend.Method{Name: fd.Name.Name, Ret: -1, Application: true}
		for _, prm := range fd.Type.Params.List {
			tid, err := tr.resolveType(prm.Type)
			if err != nil {
				return nil, err
			}
			for _, name := range prm.Names {
				m.Params = append(m.Params, len(m.Locals))
				m.Locals = append(m.Locals, frontend.LocalVar{Name: name.Name, Type: tid})
			}
		}
		if fd.Type.Results != nil {
			if len(fd.Type.Results.List) > 1 {
				return nil, tr.errAt(fd.Pos(), "multiple results are unsupported")
			}
			tid, err := tr.resolveType(fd.Type.Results.List[0].Type)
			if err != nil {
				return nil, err
			}
			m.Ret = len(m.Locals)
			m.Locals = append(m.Locals, frontend.LocalVar{Name: "$ret", Type: tid})
		}
		tr.prog.Methods = append(tr.prog.Methods, m)
		fnDecls = append(fnDecls, fd)
	}
	// Pass 5: bodies.
	for _, fd := range fnDecls {
		if fd.Body == nil {
			continue
		}
		fb := &funcBody{tr: tr, fi: tr.funcIdx[fd.Name.Name], scope: map[string]int{}}
		fb.m = &tr.prog.Methods[fb.fi]
		for i, slot := range fb.m.Params {
			_ = i
			fb.scope[fb.m.Locals[slot].Name] = slot
		}
		if err := fb.lowerBlock(fd.Body); err != nil {
			return nil, err
		}
	}
	if err := tr.prog.Validate(); err != nil {
		return nil, fmt.Errorf("gofront: internal lowering error: %w", err)
	}
	return tr.prog, nil
}
