package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// funcBody lowers one function body.
type funcBody struct {
	tr     *translator
	fi     int
	m      *frontend.Method
	scope  map[string]int
	nTemps int
}

func (b *funcBody) newLocal(name string, t pag.TypeID) int {
	slot := len(b.m.Locals)
	b.m.Locals = append(b.m.Locals, frontend.LocalVar{Name: name, Type: t})
	return slot
}

func (b *funcBody) newTemp(t pag.TypeID) int {
	b.nTemps++
	return b.newLocal(fmt.Sprintf("$t%d", b.nTemps), t)
}

func (b *funcBody) emit(s frontend.Stmt) { b.m.Body = append(b.m.Body, s) }

// lookupVar resolves an identifier to a VarRef and type.
func (b *funcBody) lookupVar(id *ast.Ident) (frontend.VarRef, pag.TypeID, error) {
	if slot, ok := b.scope[id.Name]; ok {
		return frontend.Local(slot), b.m.Locals[slot].Type, nil
	}
	if gi, ok := b.tr.globIdx[id.Name]; ok {
		return frontend.Global(gi), b.tr.prog.Globals[gi].Type, nil
	}
	return frontend.NoVar, 0, b.tr.errAt(id.Pos(), "unknown variable %s", id.Name)
}

func (b *funcBody) fieldOf(base pag.TypeID, sel *ast.Ident) (pag.FieldID, pag.TypeID, error) {
	for _, f := range b.tr.prog.Types[base].Fields {
		if f.Name == sel.Name {
			return f.ID, f.Type, nil
		}
	}
	return 0, 0, b.tr.errAt(sel.Pos(), "type %s has no field %s", b.tr.prog.Types[base].Name, sel.Name)
}

// evalToLocal lowers an expression into a local variable reference, creating
// typed temporaries as needed, and returns (ref, type).
func (b *funcBody) evalToLocal(e ast.Expr) (frontend.VarRef, pag.TypeID, error) {
	switch ex := e.(type) {
	case *ast.Ident:
		if ex.Name == "nil" {
			// nil carries no objects: a fresh, never-assigned temp.
			t := b.tr.primitive()
			return frontend.Local(b.newTemp(t)), t, nil
		}
		ref, t, err := b.lookupVar(ex)
		if err != nil {
			return frontend.NoVar, 0, err
		}
		if ref.Global {
			tmp := b.newTemp(t)
			b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(tmp), Src: ref})
			return frontend.Local(tmp), t, nil
		}
		return ref, t, nil

	case *ast.UnaryExpr:
		if ex.Op != gotoken.AND {
			return frontend.NoVar, 0, b.tr.errAt(ex.Pos(), "unsupported unary operator %s", ex.Op)
		}
		cl, ok := ex.X.(*ast.CompositeLit)
		if !ok {
			return frontend.NoVar, 0, b.tr.errAt(ex.Pos(), "&x of variables is unsupported; use &T{...} literals")
		}
		return b.lowerCompositeLit(cl)

	case *ast.CompositeLit:
		return b.lowerCompositeLit(ex)

	case *ast.SelectorExpr:
		base, bt, err := b.evalToLocal(ex.X)
		if err != nil {
			return frontend.NoVar, 0, err
		}
		fid, ft, err := b.fieldOf(bt, ex.Sel)
		if err != nil {
			return frontend.NoVar, 0, err
		}
		tmp := b.newTemp(ft)
		b.emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: base, Field: fid})
		return frontend.Local(tmp), ft, nil

	case *ast.IndexExpr:
		base, bt, err := b.evalToLocal(ex.X)
		if err != nil {
			return frontend.NoVar, 0, err
		}
		elem, err := b.sliceElem(bt, ex.Pos())
		if err != nil {
			return frontend.NoVar, 0, err
		}
		tmp := b.newTemp(elem)
		b.emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: base, Field: pag.ArrField})
		return frontend.Local(tmp), elem, nil

	case *ast.CallExpr:
		return b.lowerCall(ex)

	case *ast.BasicLit:
		t := b.tr.primitive()
		return frontend.Local(b.newTemp(t)), t, nil

	case *ast.StarExpr:
		// Dereference of a pointer-to-struct is the identity in our model.
		return b.evalToLocal(ex.X)

	default:
		return frontend.NoVar, 0, b.tr.errAt(e.Pos(), "unsupported expression %T", e)
	}
}

func (b *funcBody) sliceElem(t pag.TypeID, pos gotoken.Pos) (pag.TypeID, error) {
	ty := &b.tr.prog.Types[t]
	for _, f := range ty.Fields {
		if f.ID == pag.ArrField {
			return f.Type, nil
		}
	}
	return 0, b.tr.errAt(pos, "indexing non-slice type %s", ty.Name)
}

// lowerCompositeLit lowers &T{f: e, ...} or []T{e, ...}: allocate, then
// store the initialisers.
func (b *funcBody) lowerCompositeLit(cl *ast.CompositeLit) (frontend.VarRef, pag.TypeID, error) {
	tid, err := b.tr.resolveType(cl.Type)
	if err != nil {
		return frontend.NoVar, 0, err
	}
	tmp := b.newTemp(tid)
	b.emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(tmp), Type: tid})
	for _, el := range cl.Elts {
		switch item := el.(type) {
		case *ast.KeyValueExpr:
			key, ok := item.Key.(*ast.Ident)
			if !ok {
				return frontend.NoVar, 0, b.tr.errAt(item.Pos(), "unsupported composite key")
			}
			fid, _, err := b.fieldOf(tid, key)
			if err != nil {
				return frontend.NoVar, 0, err
			}
			val, _, err := b.evalToLocal(item.Value)
			if err != nil {
				return frontend.NoVar, 0, err
			}
			b.emit(frontend.Stmt{Kind: frontend.StStore, Base: frontend.Local(tmp), Field: fid, Src: val})
		default:
			// Positional element of a slice literal: store into the
			// collapsed element field.
			if _, err := b.sliceElem(tid, el.Pos()); err != nil {
				return frontend.NoVar, 0, b.tr.errAt(el.Pos(), "positional initialisers are only supported in slice literals")
			}
			val, _, err := b.evalToLocal(el)
			if err != nil {
				return frontend.NoVar, 0, err
			}
			b.emit(frontend.Stmt{Kind: frontend.StStore, Base: frontend.Local(tmp), Field: pag.ArrField, Src: val})
		}
	}
	return frontend.Local(tmp), tid, nil
}

// lowerCall lowers f(args), new(T), and append(s, vs...).
func (b *funcBody) lowerCall(call *ast.CallExpr) (frontend.VarRef, pag.TypeID, error) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return frontend.NoVar, 0, b.tr.errAt(call.Pos(), "unsupported call target %T", call.Fun)
	}
	switch fn.Name {
	case "new":
		if len(call.Args) != 1 {
			return frontend.NoVar, 0, b.tr.errAt(call.Pos(), "new takes one type argument")
		}
		tid, err := b.tr.resolveType(call.Args[0])
		if err != nil {
			return frontend.NoVar, 0, err
		}
		tmp := b.newTemp(tid)
		b.emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(tmp), Type: tid})
		return frontend.Local(tmp), tid, nil

	case "make":
		if len(call.Args) < 1 {
			return frontend.NoVar, 0, b.tr.errAt(call.Pos(), "make takes a type argument")
		}
		tid, err := b.tr.resolveType(call.Args[0])
		if err != nil {
			return frontend.NoVar, 0, err
		}
		tmp := b.newTemp(tid)
		b.emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(tmp), Type: tid})
		return frontend.Local(tmp), tid, nil

	case "append":
		if len(call.Args) < 2 {
			return frontend.NoVar, 0, b.tr.errAt(call.Pos(), "append needs a slice and values")
		}
		slice, st, err := b.evalToLocal(call.Args[0])
		if err != nil {
			return frontend.NoVar, 0, err
		}
		if _, err := b.sliceElem(st, call.Pos()); err != nil {
			return frontend.NoVar, 0, err
		}
		for _, arg := range call.Args[1:] {
			val, _, err := b.evalToLocal(arg)
			if err != nil {
				return frontend.NoVar, 0, err
			}
			b.emit(frontend.Stmt{Kind: frontend.StStore, Base: slice, Field: pag.ArrField, Src: val})
		}
		// append returns (a slice sharing) the same backing store.
		return slice, st, nil

	case "len", "cap":
		t := b.tr.primitive()
		return frontend.Local(b.newTemp(t)), t, nil
	}

	ci, ok := b.tr.funcIdx[fn.Name]
	if !ok {
		return frontend.NoVar, 0, b.tr.errAt(fn.Pos(), "unknown function %s", fn.Name)
	}
	callee := &b.tr.prog.Methods[ci]
	if len(call.Args) != len(callee.Params) {
		return frontend.NoVar, 0, b.tr.errAt(call.Pos(), "%s takes %d argument(s), got %d", fn.Name, len(callee.Params), len(call.Args))
	}
	var args []frontend.VarRef
	for _, a := range call.Args {
		ref, _, err := b.evalToLocal(a)
		if err != nil {
			return frontend.NoVar, 0, err
		}
		args = append(args, ref)
	}
	if callee.Ret == -1 {
		b.emit(frontend.Stmt{Kind: frontend.StCall, Callee: ci, Args: args, Dst: frontend.NoVar})
		return frontend.NoVar, 0, nil
	}
	rt := callee.Locals[callee.Ret].Type
	tmp := b.newTemp(rt)
	b.emit(frontend.Stmt{Kind: frontend.StCall, Callee: ci, Args: args, Dst: frontend.Local(tmp)})
	return frontend.Local(tmp), rt, nil
}

// assignTo stores a computed value into an lvalue (identifier, field
// selection, or index expression).
func (b *funcBody) assignTo(lhs ast.Expr, src frontend.VarRef, srcType pag.TypeID, define bool) error {
	switch lv := lhs.(type) {
	case *ast.Ident:
		if lv.Name == "_" {
			return nil
		}
		if define {
			if _, exists := b.scope[lv.Name]; !exists {
				slot := b.newLocal(lv.Name, srcType)
				b.scope[lv.Name] = slot
			}
		}
		dst, _, err := b.lookupVar(lv)
		if err != nil {
			return err
		}
		if src.IsNoVar() {
			return b.tr.errAt(lhs.Pos(), "right-hand side produces no value")
		}
		if dst == src {
			return nil
		}
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: dst, Src: src})
		return nil
	case *ast.SelectorExpr:
		base, bt, err := b.evalToLocal(lv.X)
		if err != nil {
			return err
		}
		fid, _, err := b.fieldOf(bt, lv.Sel)
		if err != nil {
			return err
		}
		b.emit(frontend.Stmt{Kind: frontend.StStore, Base: base, Field: fid, Src: src})
		return nil
	case *ast.IndexExpr:
		base, bt, err := b.evalToLocal(lv.X)
		if err != nil {
			return err
		}
		if _, err := b.sliceElem(bt, lv.Pos()); err != nil {
			return err
		}
		b.emit(frontend.Stmt{Kind: frontend.StStore, Base: base, Field: pag.ArrField, Src: src})
		return nil
	default:
		return b.tr.errAt(lhs.Pos(), "unsupported assignment target %T", lhs)
	}
}

func (b *funcBody) lowerBlock(blk *ast.BlockStmt) error {
	for _, st := range blk.List {
		if err := b.lowerStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (b *funcBody) lowerStmt(st ast.Stmt) error {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return b.tr.errAt(s.Pos(), "unbalanced assignment")
		}
		for i := range s.Lhs {
			src, t, err := b.evalToLocal(s.Rhs[i])
			if err != nil {
				return err
			}
			if err := b.assignTo(s.Lhs[i], src, t, s.Tok == gotoken.DEFINE); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != gotoken.VAR {
			return b.tr.errAt(s.Pos(), "unsupported declaration")
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			var tid pag.TypeID
			var err error
			if vs.Type != nil {
				tid, err = b.tr.resolveType(vs.Type)
				if err != nil {
					return err
				}
			}
			for i, name := range vs.Names {
				if vs.Type == nil && i < len(vs.Values) {
					src, t, err := b.evalToLocal(vs.Values[i])
					if err != nil {
						return err
					}
					slot := b.newLocal(name.Name, t)
					b.scope[name.Name] = slot
					b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(slot), Src: src})
					continue
				}
				slot := b.newLocal(name.Name, tid)
				b.scope[name.Name] = slot
				if i < len(vs.Values) {
					src, _, err := b.evalToLocal(vs.Values[i])
					if err != nil {
						return err
					}
					b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(slot), Src: src})
				}
			}
		}
		return nil

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			_, _, err := b.lowerCall(call)
			return err
		}
		return b.tr.errAt(s.Pos(), "unsupported expression statement")

	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			return nil
		}
		if len(s.Results) > 1 {
			return b.tr.errAt(s.Pos(), "multiple results are unsupported")
		}
		if b.m.Ret == -1 {
			return b.tr.errAt(s.Pos(), "return with value in void function")
		}
		src, _, err := b.evalToLocal(s.Results[0])
		if err != nil {
			return err
		}
		if src.IsNoVar() {
			return b.tr.errAt(s.Pos(), "returned expression produces no value")
		}
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(b.m.Ret), Src: src})
		return nil

	case *ast.IfStmt:
		// Flow-insensitive: both branches contribute. Conditions with
		// side-effect-free comparisons are ignored.
		if s.Init != nil {
			if err := b.lowerStmt(s.Init); err != nil {
				return err
			}
		}
		if err := b.lowerBlock(s.Body); err != nil {
			return err
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return b.lowerBlock(e)
			case *ast.IfStmt:
				return b.lowerStmt(e)
			}
		}
		return nil

	case *ast.ForStmt:
		if s.Init != nil {
			if err := b.lowerStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := b.lowerStmt(s.Post); err != nil {
				return err
			}
		}
		return b.lowerBlock(s.Body)

	case *ast.RangeStmt:
		// for _, v := range s { ... }: v receives the slice elements.
		base, bt, err := b.evalToLocal(s.X)
		if err != nil {
			return err
		}
		elem, err := b.sliceElem(bt, s.Pos())
		if err != nil {
			return err
		}
		if s.Value != nil {
			tmp := b.newTemp(elem)
			b.emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: base, Field: pag.ArrField})
			if err := b.assignTo(s.Value, frontend.Local(tmp), elem, s.Tok == gotoken.DEFINE); err != nil {
				return err
			}
		}
		return b.lowerBlock(s.Body)

	case *ast.BlockStmt:
		return b.lowerBlock(s)

	case *ast.IncDecStmt, *ast.EmptyStmt:
		return nil

	default:
		return b.tr.errAt(st.Pos(), "unsupported statement %T", st)
	}
}
