package randprog

import (
	"testing"

	"parcfl/internal/frontend"
)

func TestAlwaysValid(t *testing.T) {
	lim := DefaultLimits()
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, lim)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := frontend.Lower(p); err != nil {
			t.Fatalf("seed %d: lowering: %v", seed, err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(42, DefaultLimits())
	b := Generate(42, DefaultLimits())
	if len(a.Methods) != len(b.Methods) || len(a.Types) != len(b.Types) {
		t.Fatal("same seed produced different programs")
	}
	for i := range a.Methods {
		if len(a.Methods[i].Body) != len(b.Methods[i].Body) {
			t.Fatalf("method %d body differs", i)
		}
	}
}

func TestNoCallsLimit(t *testing.T) {
	lim := DefaultLimits()
	lim.NoCalls = true
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, lim)
		for mi := range p.Methods {
			for _, s := range p.Methods[mi].Body {
				if s.Kind == frontend.StCall {
					t.Fatalf("seed %d: NoCalls program contains a call", seed)
				}
			}
		}
	}
}

func TestEveryMethodAllocates(t *testing.T) {
	p := Generate(7, DefaultLimits())
	for mi := range p.Methods {
		hasAlloc := false
		for _, s := range p.Methods[mi].Body {
			if s.Kind == frontend.StAlloc {
				hasAlloc = true
			}
		}
		if !hasAlloc {
			t.Fatalf("method %d has no allocation", mi)
		}
	}
}

func TestMostMethodsAreApplication(t *testing.T) {
	app := 0
	total := 0
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, DefaultLimits())
		for mi := range p.Methods {
			total++
			if p.Methods[mi].Application {
				app++
			}
		}
	}
	if app*2 < total {
		t.Fatalf("only %d/%d methods are application (expect majority)", app, total)
	}
}
