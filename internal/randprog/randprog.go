// Package randprog generates small random (but always valid) mini-Java
// programs for property-based testing. Unlike javagen — which builds
// realistic benchmark-shaped programs — randprog aims for structural
// variety: random type hierarchies (possibly recursive), random call graphs
// (possibly recursive, later collapsed by the frontend), random field
// traffic, globals, and dead code, to shake out solver corner cases.
package randprog

import (
	"fmt"
	"math/rand"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// Limits bounds generation so property tests stay fast.
type Limits struct {
	MaxTypes   int // >= 1; type 0 is always a plain reference "Object"
	MaxGlobals int
	MaxMethods int // >= 1
	MaxLocals  int // per method, >= 2
	MaxStmts   int // per method
	MaxFields  int // per type
	// NoCalls suppresses call statements. On call-free programs
	// context-sensitivity is vacuous, so the CFL answer must equal
	// Andersen's exactly — a completeness oracle for tests.
	NoCalls bool
}

// DefaultLimits returns small bounds suitable for quick.Check iterations.
func DefaultLimits() Limits {
	return Limits{MaxTypes: 6, MaxGlobals: 3, MaxMethods: 7, MaxLocals: 6, MaxStmts: 10, MaxFields: 3}
}

// Generate builds a random valid program from the seed. The program always
// validates and lowers successfully; allocation statements guarantee at
// least some non-empty points-to sets.
func Generate(seed int64, lim Limits) *frontend.Program {
	rng := rand.New(rand.NewSource(seed))
	p := &frontend.Program{}

	// Types: type 0 is Object; others are reference types with random
	// reference fields (possibly recursive: field types chosen over the
	// full range, including not-yet-defined ones).
	nTypes := 1 + rng.Intn(lim.MaxTypes)
	nextField := pag.FieldID(1)
	for t := 0; t < nTypes; t++ {
		ty := frontend.Type{Name: fmt.Sprintf("T%d", t), Ref: true}
		if t > 0 {
			for f := 0; f < rng.Intn(lim.MaxFields+1); f++ {
				ty.Fields = append(ty.Fields, frontend.Field{
					Name: fmt.Sprintf("f%d", nextField),
					ID:   nextField,
					Type: pag.TypeID(rng.Intn(nTypes)),
				})
				nextField++
			}
		}
		p.Types = append(p.Types, ty)
	}
	anyField := func() pag.FieldID {
		// Pick a field that exists somewhere, or the collapsed array
		// field as a fallback (loads/stores on absent fields are legal —
		// they just never match).
		var ids []pag.FieldID
		for _, t := range p.Types {
			for _, f := range t.Fields {
				ids = append(ids, f.ID)
			}
		}
		if len(ids) == 0 || rng.Intn(8) == 0 {
			return pag.ArrField
		}
		return ids[rng.Intn(len(ids))]
	}

	for gi := 0; gi < rng.Intn(lim.MaxGlobals+1); gi++ {
		p.Globals = append(p.Globals, frontend.GlobalVar{
			Name: fmt.Sprintf("G%d", gi),
			Type: pag.TypeID(rng.Intn(nTypes)),
		})
	}

	// Method signatures first (so calls can reference any method,
	// including recursively).
	nMethods := 1 + rng.Intn(lim.MaxMethods)
	type sig struct{ params, ret int }
	sigs := make([]sig, nMethods)
	for mi := 0; mi < nMethods; mi++ {
		nLocals := 2 + rng.Intn(lim.MaxLocals-1)
		m := frontend.Method{
			Name:        fmt.Sprintf("m%d", mi),
			Application: rng.Intn(4) != 0, // most methods are queried
		}
		for li := 0; li < nLocals; li++ {
			m.Locals = append(m.Locals, frontend.LocalVar{
				Name: fmt.Sprintf("v%d", li),
				Type: pag.TypeID(rng.Intn(nTypes)),
			})
		}
		nParams := rng.Intn(3)
		if nParams > nLocals {
			nParams = nLocals
		}
		for pi := 0; pi < nParams; pi++ {
			m.Params = append(m.Params, pi)
		}
		m.Ret = -1
		if rng.Intn(2) == 0 {
			m.Ret = nLocals - 1
		}
		sigs[mi] = sig{params: nParams, ret: m.Ret}
		p.Methods = append(p.Methods, m)
	}

	// Bodies.
	for mi := 0; mi < nMethods; mi++ {
		m := &p.Methods[mi]
		nLocals := len(m.Locals)
		local := func() frontend.VarRef { return frontend.Local(rng.Intn(nLocals)) }
		varRef := func() frontend.VarRef {
			if len(p.Globals) > 0 && rng.Intn(5) == 0 {
				return frontend.Global(rng.Intn(len(p.Globals)))
			}
			return local()
		}
		// Guarantee at least one allocation per method so traversals
		// find objects.
		m.Body = append(m.Body, frontend.Stmt{
			Kind: frontend.StAlloc, Dst: local(), Type: pag.TypeID(rng.Intn(nTypes)),
		})
		kinds := 6
		if lim.NoCalls {
			kinds = 4
		}
		for s := 0; s < rng.Intn(lim.MaxStmts+1); s++ {
			switch rng.Intn(kinds) {
			case 0:
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StAlloc, Dst: local(), Type: pag.TypeID(rng.Intn(nTypes)),
				})
			case 1:
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StAssign, Dst: varRef(), Src: varRef(),
				})
			case 2:
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StLoad, Dst: varRef(), Base: varRef(), Field: anyField(),
				})
			case 3:
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StStore, Base: varRef(), Src: varRef(), Field: anyField(),
				})
			case 4, 5:
				callee := rng.Intn(nMethods)
				cs := sigs[callee]
				args := make([]frontend.VarRef, cs.params)
				for i := range args {
					args[i] = local() // params must be locals
				}
				dst := frontend.NoVar
				if cs.ret >= 0 && rng.Intn(2) == 0 {
					dst = local()
				}
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StCall, Callee: callee, Args: args, Dst: dst,
				})
			}
		}
	}
	return p
}
