package refine

import (
	"testing"

	"parcfl/internal/andersen"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
	"parcfl/internal/share"
)

func fig2(t *testing.T) *frontend.Fig2 {
	t.Helper()
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestApproximatedPassConflates: with every field approximated, s1 sees
// both o16 and o20 (any store of arr reaches any load of arr) — the cheap
// over-approximation refinement starts from.
func TestApproximatedPassConflates(t *testing.T) {
	f := fig2(t)
	s := cfl.New(f.Lowered.Graph, cfl.Config{Approx: &cfl.Approx{}})
	r := s.PointsTo(f.S1, pag.EmptyContext)
	if r.Aborted {
		t.Fatal("aborted")
	}
	objs := map[pag.NodeID]bool{}
	for _, o := range r.Objects() {
		objs[o] = true
	}
	if !objs[f.O16] || !objs[f.O20] {
		t.Fatalf("approximated pass should conflate: got %v", r.Objects())
	}
	if len(r.ApproxFields) == 0 {
		t.Fatal("no approximate matches reported")
	}
}

// TestRefinementRecoversPrecision: the refinement loop on Fig. 2 must end
// with the precise answer s1 -> {o16}.
func TestRefinementRecoversPrecision(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	out := s.PointsTo(f.S1, pag.EmptyContext)
	if !out.Converged {
		t.Fatalf("did not converge: %+v passes=%d", out, out.Passes)
	}
	got := out.Final.Objects()
	if len(got) != 1 || got[0] != f.O16 {
		t.Fatalf("refined answer = %v, want [o16]", got)
	}
	if out.Passes < 2 {
		t.Fatalf("expected at least one refinement pass, got %d", out.Passes)
	}
	if len(out.PreciseFields) == 0 {
		t.Fatal("no fields refined")
	}
}

// TestSatisfiedStopsEarly: a client satisfied by the absence of a specific
// object can stop before full precision. Querying v1 (whose approximate
// answer is already exact) must converge in one pass.
func TestSatisfiedStopsEarly(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{
		Satisfied: func(r cfl.Result) bool { return len(r.Objects()) <= 1 },
	})
	out := s.PointsTo(f.V1, pag.EmptyContext)
	if !out.Converged || out.Passes != 1 {
		t.Fatalf("v1 should satisfy immediately: %+v", out)
	}
	got := out.Final.Objects()
	if len(got) != 1 || got[0] != f.O15 {
		t.Fatalf("v1 = %v", got)
	}
}

// TestMaxPassesBounds: a one-pass limit returns the approximated answer,
// unconverged.
func TestMaxPassesBounds(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{MaxPasses: 1})
	out := s.PointsTo(f.S1, pag.EmptyContext)
	if out.Passes != 1 {
		t.Fatalf("passes = %d", out.Passes)
	}
	if out.Converged {
		t.Fatal("one bounded pass with remaining approximations reported convergence")
	}
	if len(out.Final.Objects()) < 2 {
		t.Fatalf("pass-1 answer should still be approximate: %v", out.Final.Objects())
	}
}

// TestRefinementSoundness: on random programs, every pass's answer contains
// the fully precise answer, and the final converged answer equals the
// direct precise query.
func TestRefinementSoundness(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		exact := cfl.New(lo.Graph, cfl.Config{})
		ref := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			want := map[pag.NodeID]bool{}
			for _, o := range exact.PointsTo(v, pag.EmptyContext).Objects() {
				want[o] = true
			}
			out := ref.PointsTo(v, pag.EmptyContext)
			if !out.Converged {
				t.Fatalf("seed %d: not converged", seed)
			}
			got := map[pag.NodeID]bool{}
			for _, o := range out.Final.Objects() {
				got[o] = true
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: refined %v vs exact %v", seed, lo.Graph.Node(v).Name, got, want)
			}
			for o := range want {
				if !got[o] {
					t.Fatalf("seed %d %s: refined answer missing %v", seed, lo.Graph.Node(v).Name, o)
				}
			}
		}
	}
}

// TestApproximationIsOverApproximation: on random programs, the fully
// approximated pass is a superset of Andersen's answer projected to the
// same variable (approximation must never lose facts).
func TestApproximationIsOverApproximation(t *testing.T) {
	for seed := int64(400); seed < 430; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		and := andersen.Analyze(lo.Graph)
		approx := cfl.New(lo.Graph, cfl.Config{Approx: &cfl.Approx{}})
		for _, v := range lo.AppQueryVars {
			got := map[pag.NodeID]bool{}
			for _, o := range approx.PointsTo(v, pag.EmptyContext).Objects() {
				got[o] = true
			}
			for _, o := range and.PointsTo(v) {
				if !got[o] {
					t.Fatalf("seed %d: approximate pass lost %s -> %s",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
			}
		}
	}
}

// TestShareApproxIncompatible: combining sharing with approximation panics
// (jmp entries recorded under different approximation policies would be
// unsound to exchange).
func TestShareApproxIncompatible(t *testing.T) {
	f := fig2(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cfl.New(f.Lowered.Graph, cfl.Config{
		Approx: &cfl.Approx{},
		Share:  share.NewStore(share.DefaultConfig()),
	})
}
