// Package refine implements the refinement-based configuration of
// Sridharan & Bodik (PLDI'06), the alternate configuration of the paper's
// sequential baseline ("the refinement-based configuration ... can be
// effective for certain clients, e.g., type casting", Sections IV-A and V-A).
//
// The idea: start with every field matched *regularly* — a load x = p.f is
// assumed to see every store q.f = y, with no alias check — which is a very
// cheap over-approximation. If the client is satisfied with the answer
// (e.g. the points-to set proves a cast safe), stop; otherwise make the
// fields that were matched approximately *precise* and re-run, iterating
// until the answer no longer improves, every used field is precise, or the
// pass limit is reached. Queries whose answers are already determined by
// cheap approximations never pay for full alias resolution.
package refine

import (
	"parcfl/internal/cfl"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// Config tunes the refinement loop.
type Config struct {
	// BudgetPerPass is the traversal budget for each refinement pass
	// (0 = unbounded).
	BudgetPerPass int
	// MaxPasses bounds the number of refinement iterations (including
	// the fully-approximated first pass). 0 means no bound: iterate
	// until fully precise or converged.
	MaxPasses int
	// Satisfied, if non-nil, inspects each pass's answer; returning true
	// stops refinement early (the client has what it needs — e.g. a
	// singleton set, or the absence of a particular object). A nil
	// callback refines until the answer stops changing.
	Satisfied func(cfl.Result) bool
	// Obs receives counters (refine_queries, refine_passes) and — with
	// span tracing on — one SpRefinePass span per pass. Nil disables.
	Obs *obs.Sink
}

// Solver runs refinement-based points-to queries.
type Solver struct {
	g   *pag.Graph
	cfg Config
}

// New creates a refinement solver over a frozen graph.
func New(g *pag.Graph, cfg Config) *Solver {
	if !g.Frozen() {
		panic("refine: unfrozen graph")
	}
	return &Solver{g: g, cfg: cfg}
}

// Result is the refinement outcome.
type Result struct {
	// Final is the last pass's answer.
	Final cfl.Result
	// Passes is the number of passes executed.
	Passes int
	// PreciseFields is the set of fields made precise by the end.
	PreciseFields []pag.FieldID
	// TotalSteps sums traversal steps across passes — the cost the
	// refinement actually paid, to compare against a fully precise
	// query.
	TotalSteps int
	// Converged reports the loop stopped because the answer stabilised
	// or the client was satisfied (as opposed to hitting MaxPasses).
	Converged bool
}

// PointsTo answers a points-to query by iterative refinement. Each pass
// with remaining approximations makes at least one more field precise (the
// solver only reports fields that were not yet precise), so the loop always
// terminates within the number of fields in the program even without a pass
// limit.
func (s *Solver) PointsTo(v pag.NodeID, ctx pag.Context) Result {
	precise := map[pag.FieldID]bool{}
	var out Result

	sink := s.cfg.Obs
	for pass := 0; s.cfg.MaxPasses == 0 || pass < s.cfg.MaxPasses; pass++ {
		passT0 := sink.SpanStart()
		solver := cfl.New(s.g, cfl.Config{
			Budget: s.cfg.BudgetPerPass,
			Approx: &cfl.Approx{Precise: precise},
			Obs:    sink,
			Worker: obs.NoWorker,
		})
		r := solver.PointsTo(v, ctx)
		out.Final = r
		out.Passes = pass + 1
		out.TotalSteps += r.Steps
		sink.Add(obs.CtrRefinePasses, 1)
		sink.Span(obs.SpRefinePass, obs.NoWorker, passT0, int64(v), int64(pass), int64(len(r.ApproxFields)))

		if s.cfg.Satisfied != nil && s.cfg.Satisfied(r) {
			out.Converged = true
			break
		}
		if len(r.ApproxFields) == 0 {
			// Fully precise answer: nothing left to refine.
			out.Converged = true
			break
		}
		for _, f := range r.ApproxFields {
			precise[f] = true
		}
	}

	sink.Add(obs.CtrRefineQueries, 1)
	for f := range precise {
		out.PreciseFields = append(out.PreciseFields, f)
	}
	return out
}
