package refine

import (
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

func TestRefineObsWiring(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.New(obs.Config{SpanCap: 64})
	s := New(f.Lowered.Graph, Config{Obs: sink})
	s.PointsTo(f.S1, pag.EmptyContext)
	if sink.Counter(obs.CtrRefineQueries) != 1 || sink.Counter(obs.CtrRefinePasses) == 0 {
		t.Fatalf("counters: q=%d p=%d", sink.Counter(obs.CtrRefineQueries), sink.Counter(obs.CtrRefinePasses))
	}
	spans, _ := sink.Spans()
	found := false
	for _, sp := range spans {
		if sp.Kind == obs.SpRefinePass {
			found = true
		}
	}
	if !found {
		t.Fatal("no SpRefinePass span")
	}

}
