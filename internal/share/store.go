// Package share implements the data-sharing scheme of Section III-B: paths
// discovered while answering one query are recorded as jmp shortcut edges so
// that subsequent queries (in any thread) take the shortcut instead of
// re-traversing the same paths.
//
// Conceptually the scheme rewrites the PAG (Fig. 4 adds jmp edges and the
// special unfinished node O); physically the graph stays immutable and the
// jmp edges live in this concurrent store, keyed by (direction, node,
// context) — the (x, c) key of Algorithm 2, plus a direction bit because we
// share both the PointsTo (backward) and the FlowsTo (forward) expansions.
//
// Two kinds of entries exist, mirroring Fig. 3:
//
//   - Finished: the alias expansion at (x, c) completed in s steps and
//     reached the recorded targets. A later query charges s steps to its
//     budget (keeping budget accounting aligned with an unshared run) and
//     takes the targets directly.
//   - Unfinished: a query ran out of budget s steps after entering (x, c).
//     A later query whose remaining budget is below s terminates early
//     instead of burning its budget on a traversal that cannot finish.
//
// Insertion is put-if-absent, as in the paper's ConcurrentHashMap usage: of
// two racing threads exactly one wins. The selective-insertion optimisation
// of Section IV-A is applied here: finished entries are recorded only when
// s >= TauF and unfinished ones only when s >= TauU, suppressing the flood
// of short, low-value shortcuts whose synchronisation cost exceeds their
// benefit (evaluated in Fig. 7).
package share

import (
	"sync/atomic"

	"parcfl/internal/concurrent"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// Direction distinguishes the two mutually inverse traversals that both
// benefit from sharing.
type Direction uint8

const (
	// Backward is the PointsTo direction (variable to objects).
	Backward Direction = iota
	// Forward is the FlowsTo direction (object to variables).
	Forward
)

// Key identifies one shared expansion: the (x, c) of Algorithm 2 plus the
// traversal direction.
type Key struct {
	Dir  Direction
	Node pag.NodeID
	Ctx  pag.Context
}

// Entry is the value recorded for a key.
type Entry struct {
	// Unfinished marks a Fig. 3(b) entry (out-of-budget marker); S is
	// then the minimum budget needed at this point. Otherwise the entry
	// is a Fig. 3(a) finished expansion: S is the step cost and Targets
	// the reached (node, context) pairs.
	Unfinished bool
	S          int
	Targets    []pag.NodeCtx
	// epoch is the store epoch the entry was recorded under; entries
	// from earlier epochs are invisible to Lookup and are replaced on
	// the next Put (incremental invalidation — see BumpEpoch).
	epoch int64
}

// HistBuckets is the number of power-of-two histogram buckets kept for
// Fig. 7 (2^0 .. 2^16+).
const HistBuckets = 17

// Config tunes a Store.
type Config struct {
	// TauF suppresses finished entries cheaper than this many steps
	// (paper default 100).
	TauF int
	// TauU suppresses unfinished entries cheaper than this many steps
	// (paper default 10000).
	TauU int
	// Shards is the lock-stripe count (rounded up to a power of two).
	Shards int
}

// DefaultConfig returns the paper's settings (Section IV-A).
func DefaultConfig() Config {
	return Config{TauF: 100, TauU: 10000, Shards: 64}
}

// Store holds the jmp edges discovered so far, shared by all
// query-processing goroutines of one analysis run.
type Store struct {
	cfg Config
	m   *concurrent.Map[Key, *Entry]
	// sink receives observability events; nil disables (the default). Set
	// once via SetObs before the store is shared between goroutines.
	sink *obs.Sink

	epoch                atomic.Int64
	finishedAdded        atomic.Int64
	unfinishedAdded      atomic.Int64
	finishedSuppressed   atomic.Int64
	unfinishedSuppressed atomic.Int64
	insertLost           atomic.Int64
	lookups              atomic.Int64
	lookupHits           atomic.Int64

	// curFinished/curUnfinished count the entries visible in the current
	// epoch (reset by BumpEpoch); highWater is the largest total ever
	// seen — the store's peak footprint across the whole run.
	curFinished   atomic.Int64
	curUnfinished atomic.Int64
	highWater     atomic.Int64

	histFinished   [HistBuckets]atomic.Int64
	histUnfinished [HistBuckets]atomic.Int64
}

// NewStore creates an empty jmp-edge store.
func NewStore(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	return &Store{
		cfg: cfg,
		m: concurrent.NewMap[Key, *Entry](cfg.Shards, func(k Key) uint64 {
			h := concurrent.HashSeed
			h = concurrent.HashUint64(h, uint64(k.Dir))
			h = concurrent.HashUint64(h, uint64(k.Node))
			return concurrent.HashBytes(h, k.Ctx.Key())
		}),
	}
}

// Config returns the store's configuration.
func (st *Store) Config() Config { return st.cfg }

// SetObs attaches an observability sink (nil-safe). Call before the store is
// shared between goroutines; insertions and shortcut hits are traced into it.
func (st *Store) SetObs(sink *obs.Sink) { st.sink = sink }

// Lookup returns the entry for k, if one has been recorded in the current
// epoch. Entries from earlier epochs (invalidated by BumpEpoch) are treated
// as absent.
func (st *Store) Lookup(k Key) (*Entry, bool) {
	st.lookups.Add(1)
	st.sink.Add(obs.CtrShareLookups, 1)
	e, ok := st.m.Get(k)
	if !ok || e.epoch != st.epoch.Load() {
		return nil, false
	}
	st.lookupHits.Add(1)
	st.sink.Add(obs.CtrShareHits, 1)
	if !e.Unfinished {
		st.sink.Trace(obs.EvJmpTake, obs.NoWorker, int64(k.Node), int64(e.S))
	}
	return e, true
}

// BumpEpoch lazily invalidates every recorded entry: graph edits that can
// add value-flow paths make recorded expansions incomplete, so incremental
// clients advance the epoch instead of rebuilding the store. Stale entries
// are replaced in place the next time their key is recorded. Callers
// quiesce producers first (as the incremental layer does), so resetting the
// size gauges alongside the epoch is not racy in practice.
func (st *Store) BumpEpoch() {
	st.epoch.Add(1)
	st.curFinished.Store(0)
	st.curUnfinished.Store(0)
	st.sink.SetGauge(obs.GaugeShareFinished, 0)
	st.sink.SetGauge(obs.GaugeShareUnfinished, 0)
}

// noteInsert maintains the current-epoch size gauges and the high-water
// mark after a successful insertion.
func (st *Store) noteInsert(unfinished bool) {
	var f, u int64
	if unfinished {
		u = st.curUnfinished.Add(1)
		f = st.curFinished.Load()
		st.sink.SetGauge(obs.GaugeShareUnfinished, u)
	} else {
		f = st.curFinished.Add(1)
		u = st.curUnfinished.Load()
		st.sink.SetGauge(obs.GaugeShareFinished, f)
	}
	total := f + u
	for {
		h := st.highWater.Load()
		if total <= h {
			break
		}
		if st.highWater.CompareAndSwap(h, total) {
			st.sink.SetGauge(obs.GaugeShareHighWater, total)
			break
		}
	}
}

// Epoch returns the current invalidation epoch.
func (st *Store) Epoch() int64 { return st.epoch.Load() }

// Bucket maps a step count to its Fig. 7 histogram bucket: bucket i holds
// counts with 2^i <= s < 2^(i+1), the last bucket absorbing everything
// larger.
func Bucket(s int) int {
	if s < 1 {
		s = 1
	}
	b := 0
	for s > 1 && b < HistBuckets-1 {
		s >>= 1
		b++
	}
	return b
}

// PutFinished records a completed expansion of cost s reaching targets. It
// reports whether the entry was inserted (false when suppressed by TauF or
// when another thread won the race). The targets slice is retained; callers
// must not reuse it.
func (st *Store) PutFinished(k Key, s int, targets []pag.NodeCtx) bool {
	if s < st.cfg.TauF {
		st.finishedSuppressed.Add(1)
		return false
	}
	inserted := st.putCurrent(k, &Entry{S: s, Targets: targets, epoch: st.epoch.Load()})
	if inserted {
		st.finishedAdded.Add(1)
		st.noteInsert(false)
		st.histFinished[Bucket(s)].Add(1)
		st.sink.Add(obs.CtrJmpFinishedIns, 1)
		st.sink.Trace(obs.EvJmpInsert, obs.NoWorker, int64(k.Node), int64(s))
		st.sink.SpanInstant(obs.SpJmpInsert, obs.NoWorker, int64(k.Node), int64(s))
	} else {
		st.insertLost.Add(1)
	}
	return inserted
}

// PutUnfinished records an out-of-budget marker: any traversal entering k
// needs at least s remaining budget. It reports whether the entry was
// inserted.
func (st *Store) PutUnfinished(k Key, s int) bool {
	if s < st.cfg.TauU {
		st.unfinishedSuppressed.Add(1)
		return false
	}
	inserted := st.putCurrent(k, &Entry{Unfinished: true, S: s, epoch: st.epoch.Load()})
	if inserted {
		st.unfinishedAdded.Add(1)
		st.noteInsert(true)
		st.histUnfinished[Bucket(s)].Add(1)
		st.sink.Add(obs.CtrJmpUnfinishedIns, 1)
		st.sink.Trace(obs.EvJmpInsert, obs.NoWorker, int64(k.Node), -int64(s))
		st.sink.SpanInstant(obs.SpJmpInsert, obs.NoWorker, int64(k.Node), -int64(s))
	} else {
		st.insertLost.Add(1)
	}
	return inserted
}

// putCurrent inserts e unless the key already holds a current-epoch entry;
// stale entries are replaced.
func (st *Store) putCurrent(k Key, e *Entry) bool {
	for {
		existing, inserted := st.m.PutIfAbsent(k, e)
		if inserted {
			return true
		}
		if existing.epoch == e.epoch {
			return false
		}
		// Stale entry: replace it. Replace is a compare-and-swap on the
		// pointer; on contention, retry the whole sequence.
		if st.m.Replace(k, existing, e) {
			return true
		}
	}
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// FinishedAdded and UnfinishedAdded count inserted entries; their sum
	// is the #Jumps column of Table I.
	FinishedAdded   int64
	UnfinishedAdded int64
	// FinishedSuppressed / UnfinishedSuppressed count entries dropped by
	// the TauF / TauU thresholds.
	FinishedSuppressed   int64
	UnfinishedSuppressed int64
	// InsertLost counts put-if-absent races lost to another thread.
	InsertLost int64
	// Lookups counts Lookup calls; LookupHits the ones that found a
	// current-epoch entry. Their ratio is the shortcut hit-rate — the
	// tunable signal behind the TauF/TauU thresholds.
	Lookups    int64
	LookupHits int64
	// CurFinished/CurUnfinished are the entry counts visible in the
	// current epoch; HighWater is the largest total ever seen.
	CurFinished   int64
	CurUnfinished int64
	HighWater     int64
	// HistFinished / HistUnfinished bucket inserted entries by steps
	// saved (Fig. 7).
	HistFinished   [HistBuckets]int64
	HistUnfinished [HistBuckets]int64
}

// HitRate returns LookupHits/Lookups (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.LookupHits) / float64(s.Lookups)
}

// ForEach calls f for every entry visible in the current epoch, stopping
// early if f returns false. Iteration order is unspecified. Intended for
// offline consumers — heat overlays, autopsy reports, dumps; entries
// inserted concurrently may or may not be observed, and f runs under a
// shard lock so it must not call back into the store.
func (st *Store) ForEach(f func(Key, Entry) bool) {
	ep := st.epoch.Load()
	st.m.Range(func(k Key, e *Entry) bool {
		if e.epoch != ep {
			return true
		}
		return f(k, *e)
	})
}

// Exported is the serialisable form of one jmp entry, flattened for
// persistence (see internal/snapshot). Targets is shared with the live
// entry; exported entries must be treated as immutable.
type Exported struct {
	Key        Key
	Unfinished bool
	S          int
	Targets    []pag.NodeCtx
}

// Export returns the store's current epoch and every entry visible in it,
// for persistence. Stale-epoch entries are dropped here — they are already
// invisible to Lookup, so a snapshot never resurrects them. Entries inserted
// concurrently with the export may or may not be included (same contract as
// ForEach); exporting a quiescent store is exact.
func (st *Store) Export() (epoch int64, entries []Exported) {
	epoch = st.epoch.Load()
	st.ForEach(func(k Key, e Entry) bool {
		entries = append(entries, Exported{Key: k, Unfinished: e.Unfinished, S: e.S, Targets: e.Targets})
		return true
	})
	return epoch, entries
}

// Import warm-loads exported entries into the store and restores the epoch,
// so a reloaded store resumes exactly where the exporting one left off —
// same Epoch(), same visible entries. Intended for a fresh, quiescent store
// (snapshot restore); entries bypass the TauF/TauU thresholds (they already
// passed them when first recorded) but maintain the size gauges, insertion
// counters and Fig. 7 histograms like live insertions do.
func (st *Store) Import(epoch int64, entries []Exported) {
	st.epoch.Store(epoch)
	st.sink.SetGauge(obs.GaugeEpoch, epoch)
	for _, x := range entries {
		e := &Entry{Unfinished: x.Unfinished, S: x.S, Targets: x.Targets, epoch: epoch}
		if !st.putCurrent(x.Key, e) {
			st.insertLost.Add(1)
			continue
		}
		st.noteInsert(x.Unfinished)
		if x.Unfinished {
			st.unfinishedAdded.Add(1)
			st.histUnfinished[Bucket(x.S)].Add(1)
		} else {
			st.finishedAdded.Add(1)
			st.histFinished[Bucket(x.S)].Add(1)
		}
	}
}

// NumJumps returns the total number of jmp edges recorded (Table I #Jumps).
func (st *Store) NumJumps() int64 {
	return st.finishedAdded.Load() + st.unfinishedAdded.Load()
}

// Snapshot returns the current counters.
func (st *Store) Snapshot() Stats {
	var s Stats
	s.FinishedAdded = st.finishedAdded.Load()
	s.UnfinishedAdded = st.unfinishedAdded.Load()
	s.FinishedSuppressed = st.finishedSuppressed.Load()
	s.UnfinishedSuppressed = st.unfinishedSuppressed.Load()
	s.InsertLost = st.insertLost.Load()
	s.Lookups = st.lookups.Load()
	s.LookupHits = st.lookupHits.Load()
	s.CurFinished = st.curFinished.Load()
	s.CurUnfinished = st.curUnfinished.Load()
	s.HighWater = st.highWater.Load()
	for i := 0; i < HistBuckets; i++ {
		s.HistFinished[i] = st.histFinished[i].Load()
		s.HistUnfinished[i] = st.histUnfinished[i].Load()
	}
	return s
}
