package share

import (
	"sync"
	"testing"

	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

func zeroTau() Config { return Config{TauF: 0, TauU: 0, Shards: 8} }

func TestBucket(t *testing.T) {
	cases := []struct{ s, want int }{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 10, 10}, {(1 << 16) - 1, 15}, {1 << 16, 16}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := Bucket(c.s); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestPutFinishedAndLookup(t *testing.T) {
	st := NewStore(zeroTau())
	k := Key{Dir: Backward, Node: 3, Ctx: pag.EmptyContext.Push(7)}
	targets := []pag.NodeCtx{{Node: 9, Ctx: pag.EmptyContext}}
	if !st.PutFinished(k, 150, targets) {
		t.Fatal("first PutFinished failed")
	}
	e, ok := st.Lookup(k)
	if !ok || e.Unfinished || e.S != 150 || len(e.Targets) != 1 || e.Targets[0].Node != 9 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	// Second insert loses (put-if-absent).
	if st.PutFinished(k, 999, nil) {
		t.Fatal("second PutFinished won")
	}
	e, _ = st.Lookup(k)
	if e.S != 150 {
		t.Fatalf("entry overwritten: %+v", e)
	}
	s := st.Snapshot()
	if s.FinishedAdded != 1 || s.InsertLost != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutUnfinished(t *testing.T) {
	st := NewStore(zeroTau())
	k := Key{Dir: Forward, Node: 1, Ctx: pag.EmptyContext}
	if !st.PutUnfinished(k, 5000) {
		t.Fatal("PutUnfinished failed")
	}
	e, ok := st.Lookup(k)
	if !ok || !e.Unfinished || e.S != 5000 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	// A finished insert for the same key must lose: one entry per key.
	if st.PutFinished(k, 200, nil) {
		t.Fatal("finished insert displaced unfinished entry")
	}
	if st.NumJumps() != 1 {
		t.Fatalf("NumJumps = %d", st.NumJumps())
	}
}

func TestTauSuppression(t *testing.T) {
	st := NewStore(Config{TauF: 100, TauU: 10000, Shards: 8})
	kf := Key{Dir: Backward, Node: 1}
	if st.PutFinished(kf, 99, nil) {
		t.Fatal("finished below TauF inserted")
	}
	if _, ok := st.Lookup(kf); ok {
		t.Fatal("suppressed entry is visible")
	}
	if !st.PutFinished(kf, 100, nil) {
		t.Fatal("finished at TauF rejected")
	}
	ku := Key{Dir: Backward, Node: 2}
	if st.PutUnfinished(ku, 9999) {
		t.Fatal("unfinished below TauU inserted")
	}
	if !st.PutUnfinished(ku, 10000) {
		t.Fatal("unfinished at TauU rejected")
	}
	s := st.Snapshot()
	if s.FinishedSuppressed != 1 || s.UnfinishedSuppressed != 1 {
		t.Fatalf("suppression stats = %+v", s)
	}
}

func TestDirectionAndContextDisambiguateKeys(t *testing.T) {
	st := NewStore(zeroTau())
	c1 := pag.EmptyContext.Push(1)
	k1 := Key{Dir: Backward, Node: 5, Ctx: c1}
	k2 := Key{Dir: Forward, Node: 5, Ctx: c1}
	k3 := Key{Dir: Backward, Node: 5, Ctx: pag.EmptyContext}
	st.PutFinished(k1, 10, nil)
	st.PutUnfinished(k2, 20)
	st.PutFinished(k3, 30, nil)
	e1, _ := st.Lookup(k1)
	e2, _ := st.Lookup(k2)
	e3, _ := st.Lookup(k3)
	if e1.S != 10 || e2.S != 20 || !e2.Unfinished || e3.S != 30 {
		t.Fatalf("keys collided: %+v %+v %+v", e1, e2, e3)
	}
}

func TestHistograms(t *testing.T) {
	st := NewStore(zeroTau())
	for i, s := range []int{1, 2, 4, 4, 1 << 16} {
		st.PutFinished(Key{Node: pag.NodeID(i)}, s, nil)
	}
	st.PutUnfinished(Key{Node: 100}, 1<<12)
	snap := st.Snapshot()
	if snap.HistFinished[0] != 1 || snap.HistFinished[1] != 1 || snap.HistFinished[2] != 2 || snap.HistFinished[16] != 1 {
		t.Fatalf("finished hist = %v", snap.HistFinished)
	}
	if snap.HistUnfinished[12] != 1 {
		t.Fatalf("unfinished hist = %v", snap.HistUnfinished)
	}
}

// Racing inserts on one key: exactly one insertion succeeds, and every
// thread subsequently observes the same entry. Run with -race.
func TestStoreConcurrentInserts(t *testing.T) {
	st := NewStore(zeroTau())
	k := Key{Dir: Backward, Node: 42, Ctx: pag.EmptyContext.Push(3)}
	const workers = 8
	wins := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wins[w] = st.PutFinished(k, 100+w, []pag.NodeCtx{{Node: pag.NodeID(w)}})
		}(w)
	}
	wg.Wait()
	nwins := 0
	for _, w := range wins {
		if w {
			nwins++
		}
	}
	if nwins != 1 {
		t.Fatalf("%d inserts won, want 1", nwins)
	}
	if st.NumJumps() != 1 {
		t.Fatalf("NumJumps = %d", st.NumJumps())
	}
}

// TestStoreConcurrentWithEpochBumps hammers the store from writer, reader
// and epoch-bumping goroutines at once, exercising the stale-entry Replace
// retry loop in putCurrent. Run with -race; correctness invariant: every
// Lookup hit is an entry from some epoch <= the epoch at observation time,
// and the store never loses its one-entry-per-key discipline.
func TestStoreConcurrentWithEpochBumps(t *testing.T) {
	st := NewStore(zeroTau())
	const (
		writers = 4
		readers = 4
		keys    = 32
		iters   = 500
	)
	var wg sync.WaitGroup

	// Epoch bumper: invalidates everything repeatedly mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st.BumpEpoch()
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := Key{Dir: Direction(i % 2), Node: pag.NodeID(i % keys)}
				if i%3 == 0 {
					st.PutUnfinished(k, 10000+i)
				} else {
					st.PutFinished(k, 100+i, []pag.NodeCtx{{Node: pag.NodeID(w)}})
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < iters/2; round++ {
				for i := 0; i < keys; i++ {
					k := Key{Dir: Direction(i % 2), Node: pag.NodeID(i)}
					if e, ok := st.Lookup(k); ok {
						if e.S <= 0 {
							t.Error("lookup returned a zero-cost entry")
							return
						}
						if !e.Unfinished && e.S < 100 {
							t.Errorf("finished entry below insertion floor: %+v", e)
							return
						}
					}
				}
			}
		}()
	}

	// Take snapshots concurrently with the traffic, then wait for everyone.
	for i := 0; i < writers*iters/100; i++ {
		st.Snapshot() // concurrent snapshots must also be safe
	}
	wg.Wait()

	s := st.Snapshot()
	if s.FinishedAdded+s.UnfinishedAdded == 0 {
		t.Fatal("nothing was ever inserted")
	}
	if s.Lookups == 0 {
		t.Fatal("readers performed no lookups")
	}
	if got := st.NumJumps(); got != s.FinishedAdded+s.UnfinishedAdded {
		t.Fatalf("NumJumps = %d, stats say %d", got, s.FinishedAdded+s.UnfinishedAdded)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.TauF != 100 || c.TauU != 10000 {
		t.Fatalf("DefaultConfig = %+v, want paper's tauF=100 tauU=10000", c)
	}
}

func TestSizeGaugesAndHighWater(t *testing.T) {
	st := NewStore(zeroTau())
	sink := obs.New(obs.Config{})
	st.SetObs(sink)

	for i := 0; i < 3; i++ {
		if !st.PutFinished(Key{Dir: Forward, Node: pag.NodeID(i)}, 100, nil) {
			t.Fatalf("PutFinished %d failed", i)
		}
	}
	if !st.PutUnfinished(Key{Dir: Backward, Node: 50}, 5000) {
		t.Fatal("PutUnfinished failed")
	}
	// A losing insert must not move the gauges.
	st.PutFinished(Key{Dir: Forward, Node: 0}, 999, nil)

	if got := sink.Gauge(obs.GaugeShareFinished); got != 3 {
		t.Errorf("finished gauge = %d, want 3", got)
	}
	if got := sink.Gauge(obs.GaugeShareUnfinished); got != 1 {
		t.Errorf("unfinished gauge = %d, want 1", got)
	}
	if got := sink.Gauge(obs.GaugeShareHighWater); got != 4 {
		t.Errorf("high-water gauge = %d, want 4", got)
	}
	s := st.Snapshot()
	if s.CurFinished != 3 || s.CurUnfinished != 1 || s.HighWater != 4 {
		t.Fatalf("stats = {cur %d/%d hw %d}, want {3/1 4}", s.CurFinished, s.CurUnfinished, s.HighWater)
	}

	// An epoch bump empties the visible store but the high-water mark is
	// the lifetime peak and must survive.
	st.BumpEpoch()
	if got := sink.Gauge(obs.GaugeShareFinished); got != 0 {
		t.Errorf("finished gauge after bump = %d, want 0", got)
	}
	if got := sink.Gauge(obs.GaugeShareHighWater); got != 4 {
		t.Errorf("high-water gauge after bump = %d, want 4", got)
	}
	// Refilling past the old peak raises it again.
	for i := 0; i < 5; i++ {
		st.PutFinished(Key{Dir: Forward, Node: pag.NodeID(100 + i)}, 100, nil)
	}
	if got := st.Snapshot().HighWater; got != 5 {
		t.Errorf("high-water after refill = %d, want 5", got)
	}
}

func TestLookupHitCounters(t *testing.T) {
	st := NewStore(zeroTau())
	sink := obs.New(obs.Config{})
	st.SetObs(sink)
	k := Key{Dir: Forward, Node: 7}
	st.PutFinished(k, 100, nil)
	st.Lookup(k)                           // hit
	st.Lookup(Key{Dir: Forward, Node: 8})  // miss
	st.Lookup(Key{Dir: Backward, Node: 7}) // miss (direction differs)
	if got := sink.Counter(obs.CtrShareLookups); got != 3 {
		t.Errorf("share_lookups = %d, want 3", got)
	}
	if got := sink.Counter(obs.CtrShareHits); got != 1 {
		t.Errorf("share_hits = %d, want 1", got)
	}
}

func TestForEach(t *testing.T) {
	st := NewStore(zeroTau())
	kf := Key{Dir: Backward, Node: 1, Ctx: pag.EmptyContext}
	ku := Key{Dir: Forward, Node: 2, Ctx: pag.EmptyContext}
	st.PutFinished(kf, 100, []pag.NodeCtx{{Node: 9, Ctx: pag.EmptyContext}})
	st.PutUnfinished(ku, 200)

	got := map[Key]Entry{}
	st.ForEach(func(k Key, e Entry) bool {
		got[k] = e
		return true
	})
	if len(got) != 2 {
		t.Fatalf("ForEach visited %d entries, want 2", len(got))
	}
	if e := got[kf]; e.Unfinished || e.S != 100 || len(e.Targets) != 1 {
		t.Fatalf("finished entry = %+v", e)
	}
	if e := got[ku]; !e.Unfinished || e.S != 200 {
		t.Fatalf("unfinished entry = %+v", e)
	}

	// Early stop.
	n := 0
	st.ForEach(func(Key, Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stopping ForEach visited %d entries, want 1", n)
	}

	// Entries from a stale epoch are invisible.
	st.BumpEpoch()
	n = 0
	st.ForEach(func(Key, Entry) bool { n++; return true })
	if n != 0 {
		t.Fatalf("ForEach visited %d stale entries, want 0", n)
	}
}
