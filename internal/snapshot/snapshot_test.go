package snapshot

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/kernel"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

func genBench(t testing.TB) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "snaptest", Seed: 17, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

func roundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestRoundTripLossless is the acceptance criterion: answers computed on a
// save→load graph (with the warm store and cache) are byte-identical to the
// resident run's — same Objects slices in the same order, which requires the
// decoded adjacency lists to preserve the original traversal order exactly.
func TestRoundTripLossless(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars

	store := share.NewStore(share.DefaultConfig())
	cache := ptcache.New(16)
	cfg := engine.Config{Mode: engine.Seq, TauF: 1, TauU: 1, Store: store, Cache: cache}
	resident, _ := engine.Run(lo.Graph, queries, cfg)

	loaded := roundTrip(t, &Snapshot{
		Graph: lo.Graph, Store: store, Cache: cache,
		Meta: Meta{Label: "test", TypeLevels: lo.TypeLevels, QueryVars: queries},
	})
	if loaded.Store == nil || loaded.Cache == nil {
		t.Fatal("store/cache missing after round trip")
	}
	if !reflect.DeepEqual(loaded.Meta.TypeLevels, lo.TypeLevels) {
		t.Fatal("TypeLevels not preserved")
	}
	if !reflect.DeepEqual(loaded.Meta.QueryVars, queries) {
		t.Fatal("QueryVars not preserved")
	}

	warmCfg := engine.Config{Mode: engine.Seq, TauF: 1, TauU: 1, Store: loaded.Store, Cache: loaded.Cache}
	warm, _ := engine.Run(loaded.Graph, loaded.Meta.QueryVars, warmCfg)
	if len(warm) != len(resident) {
		t.Fatalf("result count %d after reload, want %d", len(warm), len(resident))
	}
	for i := range resident {
		a, b := resident[i], warm[i]
		if a.Var != b.Var || a.Aborted != b.Aborted || a.Contexts != b.Contexts ||
			!reflect.DeepEqual(a.Objects, b.Objects) {
			t.Fatalf("query %d (var %d): result diverged after save→load:\nresident: %+v\nwarm:     %+v",
				i, a.Var, a, b)
		}
	}
}

// TestGraphOnlySnapshot covers the store-less/cache-less shape (a daemon
// started with sharing off still snapshots its graph).
func TestGraphOnlySnapshot(t *testing.T) {
	lo := genBench(t)
	loaded := roundTrip(t, &Snapshot{Graph: lo.Graph})
	if loaded.Store != nil || loaded.Cache != nil {
		t.Fatal("unexpected store/cache materialised")
	}
	if loaded.Graph.NumNodes() != lo.Graph.NumNodes() {
		t.Fatalf("node count %d, want %d", loaded.Graph.NumNodes(), lo.Graph.NumNodes())
	}
}

// TestMidEpochRestore is the incremental-invalidation contract: a snapshot
// taken mid-epoch restores Epoch() on load, keeps current-epoch entries,
// and drops stale-epoch entries (they are already invisible to Lookup, and
// the save must not resurrect them).
func TestMidEpochRestore(t *testing.T) {
	store := share.NewStore(share.DefaultConfig())
	staleKey := share.Key{Dir: share.Backward, Node: 1, Ctx: pag.EmptyContext}
	if !store.PutFinished(staleKey, 500, []pag.NodeCtx{{Node: 2, Ctx: pag.EmptyContext}}) {
		t.Fatal("stale put rejected")
	}

	store.BumpEpoch()
	store.BumpEpoch() // epoch 2: a mid-life snapshot, not a fresh store
	liveKey := share.Key{Dir: share.Forward, Node: 3, Ctx: pag.EmptyContext.Push(7)}
	if !store.PutFinished(liveKey, 600, []pag.NodeCtx{{Node: 4, Ctx: pag.EmptyContext}}) {
		t.Fatal("live put rejected")
	}
	liveUnf := share.Key{Dir: share.Backward, Node: 5, Ctx: pag.EmptyContext}
	if !store.PutUnfinished(liveUnf, 12345) {
		t.Fatal("live unfinished put rejected")
	}

	cache := ptcache.New(4)
	cache.Put(ptcache.Key{Dir: ptcache.Backward, Node: 1, Ctx: pag.EmptyContext},
		[]pag.NodeCtx{{Node: 2, Ctx: pag.EmptyContext}})
	cache.BumpEpoch() // cache snapshot lands at epoch 1 with no live entries

	lo := genBench(t)
	loaded := roundTrip(t, &Snapshot{Graph: lo.Graph, Store: store, Cache: cache})

	if got := loaded.Store.Epoch(); got != 2 {
		t.Fatalf("store epoch %d after reload, want 2", got)
	}
	if got := loaded.Cache.Epoch(); got != 1 {
		t.Fatalf("cache epoch %d after reload, want 1", got)
	}
	if _, ok := loaded.Store.Lookup(staleKey); ok {
		t.Fatal("stale-epoch entry resurrected by snapshot")
	}
	e, ok := loaded.Store.Lookup(liveKey)
	if !ok || e.Unfinished || e.S != 600 || len(e.Targets) != 1 || e.Targets[0].Node != 4 {
		t.Fatalf("live finished entry lost or mangled: %+v (ok=%v)", e, ok)
	}
	u, ok := loaded.Store.Lookup(liveUnf)
	if !ok || !u.Unfinished || u.S != 12345 {
		t.Fatalf("live unfinished entry lost or mangled: %+v (ok=%v)", u, ok)
	}
	if _, ok := loaded.Cache.Get(ptcache.Key{Dir: ptcache.Backward, Node: 1, Ctx: pag.EmptyContext}); ok {
		t.Fatal("stale cache entry resurrected by snapshot")
	}
}

// TestWarmStartJmpWin is the bench-facing acceptance criterion: on the same
// batch, a warm start (loaded store) must get strictly more work out of jmp
// shortcuts — more steps satisfied by shortcuts, a higher lookup hit-rate —
// and walk strictly fewer steps than a cold start. (Raw JumpsTaken can drop
// on a warm store: one mature shortcut near a query's root replaces many
// small intra-batch ones, which is the point.)
func TestWarmStartJmpWin(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	base := engine.Config{Mode: engine.DQ, Threads: 2, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels}

	coldStore := share.NewStore(share.DefaultConfig())
	coldCfg := base
	coldCfg.Store = coldStore
	_, cold := engine.Run(lo.Graph, queries, coldCfg)

	loaded := roundTrip(t, &Snapshot{Graph: lo.Graph, Store: coldStore,
		Meta: Meta{TypeLevels: lo.TypeLevels, QueryVars: queries}})

	warmCfg := base
	warmCfg.TypeLevels = loaded.Meta.TypeLevels
	warmCfg.Store = loaded.Store
	_, warm := engine.Run(loaded.Graph, loaded.Meta.QueryVars, warmCfg)

	coldWalked := cold.TotalSteps - cold.StepsSaved
	warmWalked := warm.TotalSteps - warm.StepsSaved
	if warm.StepsSaved <= cold.StepsSaved {
		t.Fatalf("warm start saved %d steps via jmp shortcuts, cold saved %d — no reuse win",
			warm.StepsSaved, cold.StepsSaved)
	}
	if warmWalked >= coldWalked {
		t.Fatalf("warm start walked %d steps, cold walked %d — no reuse win",
			warmWalked, coldWalked)
	}
	coldRate := float64(cold.Share.LookupHits) / float64(max(cold.Share.Lookups, 1))
	warmRate := float64(warm.Share.LookupHits) / float64(max(warm.Share.Lookups, 1))
	if warmRate <= coldRate {
		t.Fatalf("warm jmp hit-rate %.3f not above cold %.3f", warmRate, coldRate)
	}
	t.Logf("cold: walked=%d saved=%d hit-rate=%.3f; warm: walked=%d saved=%d hit-rate=%.3f",
		coldWalked, cold.StepsSaved, coldRate, warmWalked, warm.StepsSaved, warmRate)
}

// TestHeaderValidation rejects wrong magic and unknown versions.
func TestHeaderValidation(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTASNAPSHOT....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	lo := genBench(t)
	var buf bytes.Buffer
	if err := Write(&buf, &Snapshot{Graph: lo.Graph}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(Magic)+3]++ // bump the version byte
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestSaveLoadFile exercises the atomic file path helpers.
func TestSaveLoadFile(t *testing.T) {
	lo := genBench(t)
	path := filepath.Join(t.TempDir(), "warm.pag")
	if err := Save(path, &Snapshot{Graph: lo.Graph, Meta: Meta{Label: "file"}}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Meta.Label != "file" || loaded.Graph.NumNodes() != lo.Graph.NumNodes() {
		t.Fatal("file round trip lost data")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.pag")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestKernelRoundTrip: a snapshot carrying a kernel Prep restores it intact
// (and validated against the restored graph).
func TestKernelRoundTrip(t *testing.T) {
	lo := genBench(t)
	prep := kernel.Build(lo.Graph)
	loaded := roundTrip(t, &Snapshot{Graph: lo.Graph, Kernel: prep})
	if loaded.Kernel == nil {
		t.Fatal("kernel prep lost in round trip")
	}
	if !reflect.DeepEqual(loaded.Kernel, prep) {
		t.Fatal("kernel prep changed in round trip")
	}
	if err := loaded.Kernel.Matches(loaded.Graph); err != nil {
		t.Fatalf("restored prep does not match restored graph: %v", err)
	}
}

// TestKernelMismatchRejected: Write refuses to persist a Prep built from a
// different graph.
func TestKernelMismatchRejected(t *testing.T) {
	lo := genBench(t)
	tiny := pag.NewGraph()
	n := tiny.AddLocal("x", 1, 0)
	o := tiny.AddObject("o", 1)
	tiny.AddEdge(pag.Edge{Dst: n, Src: o, Kind: pag.EdgeNew})
	tiny.Freeze()
	prep := kernel.Build(tiny)
	var buf bytes.Buffer
	if err := Write(&buf, &Snapshot{Graph: lo.Graph, Kernel: prep}); err == nil {
		t.Fatal("mismatched kernel prep accepted")
	}
}
