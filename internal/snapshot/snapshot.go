// Package snapshot persists the warm state of a resident analysis service —
// the PAG, the jmp-edge store, and the cross-query result cache — so a
// restarted process resumes with the summaries earlier queries paid for
// instead of re-paying the cold-start cost. This is the paper's whole
// economic argument (Fig. 3/4, Algorithm 2) extended across process
// lifetimes: jump edges recorded while answering one query make later
// queries cheaper, so the accumulated store is an asset worth keeping.
//
// # Format and version policy
//
// A snapshot file is a fixed ASCII magic ("PARCFLSNAP"), a big-endian
// uint32 format version, and one gob-encoded envelope. The graph is nested
// as an opaque binary blob produced by pag.WriteGob, which preserves both
// adjacency-list orders verbatim — a warm-loaded graph traverses edges in
// exactly the order the original did, which is what makes warm answers
// byte-identical to the resident run's. Store and cache entries are
// flattened to gob-friendly wire structs (contexts travel as their Key()
// strings).
//
// The version is bumped on any breaking layout change; Read rejects files
// whose version it does not understand rather than guessing. Epochs are
// preserved exactly: a snapshot taken mid-epoch restores Epoch() on load,
// and stale-epoch entries — already invisible to Lookup — are dropped at
// save time, never resurrected.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"parcfl/internal/kernel"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// Magic identifies a snapshot file.
const Magic = "PARCFLSNAP"

// Version is the current format version. Bump on breaking changes.
const Version = 1

// Meta carries the serving context that is not derivable from the graph:
// the scheduler's type levels, the query census (so a warm daemon can list
// and replay the workload), and the solver settings the state was recorded
// under (mixing budgets across a snapshot boundary would skew unfinished-
// entry semantics).
type Meta struct {
	// CreatedUnixNano stamps the save time.
	CreatedUnixNano int64
	// Label is a free-form name for diagnostics ("autosave", "bench", ...).
	Label string
	// TypeLevels feeds the DQ scheduler's dependence-depth heuristic.
	TypeLevels []int
	// QueryVars is the application query census of the loaded program.
	QueryVars []pag.NodeID
	// Budget and ContextK echo the solver configuration the store was
	// warmed under.
	Budget   int
	ContextK int
	// Shard and NumShards identify which cluster slice this snapshot's warm
	// state belongs to; 0/0 means an unsharded daemon. Added after Version 1
	// shipped; gob decodes older envelopes to the zero values, so the format
	// version is unchanged (strictly additive).
	Shard     int
	NumShards int
}

// Snapshot is the in-memory form: a frozen graph plus optional warm store,
// cache, and preprocessed kernel form.
type Snapshot struct {
	Graph *pag.Graph
	Store *share.Store   // nil when no jmp store was saved
	Cache *ptcache.Cache // nil when no result cache was saved
	// Kernel is the graph's preprocessed traversal form (nil when none was
	// saved); persisting it lets a warm-started daemon skip the offline
	// SCC/CSR build. Read verifies it matches the loaded graph.
	Kernel *kernel.Prep
	// ShardPlan is the serialized parcfl-shardplan/v1 document the store and
	// cache were sliced under (nil for unsharded snapshots). Kept opaque here
	// so this package does not depend on the cluster package; internal/cluster
	// owns the format.
	ShardPlan []byte
	Meta      Meta
}

// Wire structs: contexts travel as Key() strings, which uniquely determine
// them (pag.ContextFromKey is the inverse).

type wireNodeCtx struct {
	Node pag.NodeID
	Ctx  string
}

type wireShareEntry struct {
	Dir        uint8
	Node       pag.NodeID
	Ctx        string
	Unfinished bool
	S          int
	Targets    []wireNodeCtx
}

type wireCacheEntry struct {
	Dir  uint8
	Node pag.NodeID
	Ctx  string
	Set  []wireNodeCtx
}

// envelope is the single gob message following the magic/version header.
type envelope struct {
	Meta  Meta
	Graph []byte // pag.WriteGob output

	HasStore     bool
	StoreCfg     share.Config
	StoreEpoch   int64
	StoreEntries []wireShareEntry

	HasCache     bool
	CacheEpoch   int64
	CacheEntries []wireCacheEntry

	// HasKernel/Kernel were added after Version 1 shipped; gob decodes
	// envelopes without them to the zero value, so the version number is
	// unchanged (strictly additive).
	HasKernel bool
	Kernel    []byte // kernel.WriteGob output

	// ShardPlan (with Meta.Shard/NumShards) is likewise additive: absent in
	// pre-cluster snapshots, decoded as nil.
	ShardPlan []byte
}

func toWireNodeCtxs(in []pag.NodeCtx) []wireNodeCtx {
	if in == nil {
		return nil
	}
	out := make([]wireNodeCtx, len(in))
	for i, nc := range in {
		out[i] = wireNodeCtx{Node: nc.Node, Ctx: nc.Ctx.Key()}
	}
	return out
}

func fromWireNodeCtxs(in []wireNodeCtx) []pag.NodeCtx {
	if in == nil {
		return nil
	}
	out := make([]pag.NodeCtx, len(in))
	for i, nc := range in {
		out[i] = pag.NodeCtx{Node: nc.Node, Ctx: pag.ContextFromKey(nc.Ctx)}
	}
	return out
}

// Write serialises the snapshot. The graph must be frozen. Store and cache
// should be quiescent for an exact export (concurrent inserts may or may not
// be included, which is safe but inexact).
func Write(w io.Writer, s *Snapshot) error {
	if s.Graph == nil {
		return fmt.Errorf("snapshot: nil graph")
	}
	var gbuf bytes.Buffer
	if err := s.Graph.WriteGob(&gbuf); err != nil {
		return err
	}
	env := envelope{Meta: s.Meta, Graph: gbuf.Bytes()}
	if s.Store != nil {
		env.HasStore = true
		env.StoreCfg = s.Store.Config()
		epoch, entries := s.Store.Export()
		env.StoreEpoch = epoch
		env.StoreEntries = make([]wireShareEntry, len(entries))
		for i, e := range entries {
			env.StoreEntries[i] = wireShareEntry{
				Dir: uint8(e.Key.Dir), Node: e.Key.Node, Ctx: e.Key.Ctx.Key(),
				Unfinished: e.Unfinished, S: e.S, Targets: toWireNodeCtxs(e.Targets),
			}
		}
	}
	if s.Cache != nil {
		env.HasCache = true
		epoch, entries := s.Cache.Export()
		env.CacheEpoch = epoch
		env.CacheEntries = make([]wireCacheEntry, len(entries))
		for i, e := range entries {
			env.CacheEntries[i] = wireCacheEntry{
				Dir: uint8(e.Key.Dir), Node: e.Key.Node, Ctx: e.Key.Ctx.Key(),
				Set: toWireNodeCtxs(e.Set),
			}
		}
	}
	if s.Kernel != nil {
		if err := s.Kernel.Matches(s.Graph); err != nil {
			return fmt.Errorf("snapshot: kernel prep does not match graph: %w", err)
		}
		var kbuf bytes.Buffer
		if err := s.Kernel.WriteGob(&kbuf); err != nil {
			return err
		}
		env.HasKernel = true
		env.Kernel = kbuf.Bytes()
	}
	env.ShardPlan = s.ShardPlan
	if _, err := io.WriteString(w, Magic); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if err := binary.Write(w, binary.BigEndian, uint32(Version)); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("snapshot: encoding: %w", err)
	}
	return nil
}

// Read deserialises a snapshot written by Write, reconstructing the graph,
// a warm store (with its epoch and entries restored), and a warm cache.
func Read(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a parcfl snapshot)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (this build reads %d)", version, Version)
	}
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("snapshot: decoding: %w", err)
	}
	g, err := pag.ReadGob(bytes.NewReader(env.Graph))
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Graph: g, Meta: env.Meta, ShardPlan: env.ShardPlan}
	numNodes := pag.NodeID(g.NumNodes())
	if env.HasStore {
		entries := make([]share.Exported, len(env.StoreEntries))
		for i, e := range env.StoreEntries {
			if e.Node >= numNodes {
				return nil, fmt.Errorf("snapshot: store entry references unknown node %d", e.Node)
			}
			entries[i] = share.Exported{
				Key:        share.Key{Dir: share.Direction(e.Dir), Node: e.Node, Ctx: pag.ContextFromKey(e.Ctx)},
				Unfinished: e.Unfinished, S: e.S, Targets: fromWireNodeCtxs(e.Targets),
			}
		}
		s.Store = share.NewStore(env.StoreCfg)
		s.Store.Import(env.StoreEpoch, entries)
	}
	if env.HasKernel {
		prep, err := kernel.ReadGob(bytes.NewReader(env.Kernel))
		if err != nil {
			return nil, err
		}
		if err := prep.Matches(g); err != nil {
			return nil, fmt.Errorf("snapshot: kernel prep does not match graph: %w", err)
		}
		s.Kernel = prep
	}
	if env.HasCache {
		entries := make([]ptcache.Exported, len(env.CacheEntries))
		for i, e := range env.CacheEntries {
			if e.Node >= numNodes {
				return nil, fmt.Errorf("snapshot: cache entry references unknown node %d", e.Node)
			}
			entries[i] = ptcache.Exported{
				Key: ptcache.Key{Dir: ptcache.Direction(e.Dir), Node: e.Node, Ctx: pag.ContextFromKey(e.Ctx)},
				Set: fromWireNodeCtxs(e.Set),
			}
		}
		s.Cache = ptcache.New(64)
		s.Cache.Import(env.CacheEpoch, entries)
	}
	return s, nil
}

// Save writes the snapshot to path atomically: a temp file in the same
// directory is written, synced, and renamed over the destination, so an
// autosave racing a crash never leaves a truncated snapshot behind.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".parcfl-snap-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = Write(tmp, s)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(f)
}
