package engine

import (
	"sort"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
)

// TestPropertyParallelEqualsSequential: on random programs, every parallel
// configuration computes exactly the sequential results (unbudgeted).
func TestPropertyParallelEqualsSequential(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		queries := lo.AppQueryVars
		if len(queries) == 0 {
			continue
		}
		canon := func(rs []QueryResult) map[pag.NodeID]string {
			m := map[pag.NodeID]string{}
			for _, r := range rs {
				objs := append([]pag.NodeID{}, r.Objects...)
				sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
				key := ""
				for _, o := range objs {
					key += string(rune(o)) + ","
				}
				m[r.Var] = key
			}
			return m
		}
		seqRes, seqStats := Run(lo.Graph, queries, Config{Mode: Seq})
		if seqStats.Aborted != 0 {
			t.Fatalf("seed %d: sequential aborted", seed)
		}
		want := canon(seqRes)
		for _, cfg := range []Config{
			{Mode: Naive, Threads: 3},
			{Mode: D, Threads: 3, TauF: 1, TauU: 1},
			{Mode: DQ, Threads: 3, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
		} {
			res, _ := Run(lo.Graph, queries, cfg)
			got := canon(res)
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: result count %d vs %d", seed, cfg.Mode, len(got), len(want))
			}
			for v, k := range want {
				if got[v] != k {
					t.Fatalf("seed %d %v: var %s mismatch", seed, cfg.Mode, lo.Graph.Node(v).Name)
				}
			}
		}
	}
}

// TestPropertyStatsConsistency: aggregate statistics are internally
// consistent on random programs.
func TestPropertyStatsConsistency(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		_, st := Run(lo.Graph, lo.AppQueryVars, Config{Mode: DQ, Threads: 3, Budget: 5000, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels})
		if st.Completed+st.Aborted != st.Queries {
			t.Fatalf("seed %d: completed %d + aborted %d != queries %d", seed, st.Completed, st.Aborted, st.Queries)
		}
		if st.EarlyTerminations > st.Aborted {
			t.Fatalf("seed %d: ETs %d > aborted %d", seed, st.EarlyTerminations, st.Aborted)
		}
		if st.StepsSaved > st.TotalSteps {
			t.Fatalf("seed %d: saved %d > total %d", seed, st.StepsSaved, st.TotalSteps)
		}
		var walked int64
		for _, w := range st.WalkedPerWorker {
			walked += w
		}
		if walked != st.StepsWalked() {
			t.Fatalf("seed %d: per-worker walked %d != steps walked %d", seed, walked, st.StepsWalked())
		}
	}
}
