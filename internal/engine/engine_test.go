package engine

import (
	"sort"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
)

func genBench(t *testing.T) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "enginetest", Seed: 11, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// resultMap indexes batch results by variable; completed queries only.
func resultMap(rs []QueryResult) map[pag.NodeID][]pag.NodeID {
	m := make(map[pag.NodeID][]pag.NodeID, len(rs))
	for _, r := range rs {
		if r.Aborted {
			continue
		}
		objs := append([]pag.NodeID{}, r.Objects...)
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		m[r.Var] = objs
	}
	return m
}

func sameResults(t *testing.T, name string, a, b map[pag.NodeID][]pag.NodeID) {
	t.Helper()
	for v, objs := range a {
		bObjs, ok := b[v]
		if !ok {
			continue // aborted in the other mode; allowed under budgets
		}
		if len(objs) != len(bObjs) {
			t.Fatalf("%s: var %d: %v vs %v", name, v, objs, bObjs)
		}
		for i := range objs {
			if objs[i] != bObjs[i] {
				t.Fatalf("%s: var %d: %v vs %v", name, v, objs, bObjs)
			}
		}
	}
}

// TestModesAgreeUnbudgeted is the central correctness property: with no
// budget, every mode (any thread count) must compute the exact same
// points-to sets for every query.
func TestModesAgreeUnbudgeted(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars

	seqRes, seqStats := Run(lo.Graph, queries, Config{Mode: Seq})
	if seqStats.Aborted != 0 {
		t.Fatalf("unbudgeted sequential run aborted %d queries", seqStats.Aborted)
	}
	seqMap := resultMap(seqRes)

	for _, cfg := range []Config{
		{Mode: Naive, Threads: 4},
		{Mode: D, Threads: 4, TauF: 1, TauU: 1},
		{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
	} {
		res, stats := Run(lo.Graph, queries, cfg)
		if stats.Aborted != 0 {
			t.Fatalf("%v: aborted %d queries without budget", cfg.Mode, stats.Aborted)
		}
		if stats.Queries != len(queries) {
			t.Fatalf("%v: ran %d of %d queries", cfg.Mode, stats.Queries, len(queries))
		}
		m := resultMap(res)
		if len(m) != len(seqMap) {
			t.Fatalf("%v: %d results vs %d sequential", cfg.Mode, len(m), len(seqMap))
		}
		sameResults(t, cfg.Mode.String(), seqMap, m)
		sameResults(t, cfg.Mode.String(), m, seqMap)
	}
}

// TestModesAgreeBudgeted: under a budget, queries that complete in both
// modes must agree exactly (abort sets may differ between modes).
func TestModesAgreeBudgeted(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	const B = 20000

	seqRes, _ := Run(lo.Graph, queries, Config{Mode: Seq, Budget: B})
	seqMap := resultMap(seqRes)
	for _, cfg := range []Config{
		{Mode: Naive, Threads: 4, Budget: B},
		{Mode: D, Threads: 4, Budget: B, TauF: 1, TauU: 1},
		{Mode: DQ, Threads: 4, Budget: B, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
	} {
		res, _ := Run(lo.Graph, queries, cfg)
		sameResults(t, cfg.Mode.String(), resultMap(res), seqMap)
	}
}

func TestSharingActuallyShares(t *testing.T) {
	lo := genBench(t)
	_, dStats := Run(lo.Graph, lo.AppQueryVars, Config{Mode: D, Threads: 4, TauF: 1, TauU: 1})
	if dStats.Share.FinishedAdded == 0 {
		t.Fatal("D mode recorded no finished jmp edges")
	}
	if dStats.JumpsTaken == 0 {
		t.Fatal("D mode took no shortcuts")
	}
	if dStats.StepsSaved == 0 {
		t.Fatal("D mode saved no steps")
	}
	if dStats.RS() <= 0 {
		t.Fatal("R_S not positive")
	}
}

func TestSeqForcesOneThread(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars[:4], Config{Mode: Seq, Threads: 16})
	if stats.Threads != 1 {
		t.Fatalf("Seq ran with %d threads", stats.Threads)
	}
}

func TestDQGroupStats(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: DQ, Threads: 2, TypeLevels: lo.TypeLevels, TauF: 1, TauU: 1,
	})
	if stats.NumGroups == 0 || stats.AvgGroupSize <= 0 {
		t.Fatalf("DQ group stats missing: %+v", stats)
	}
	if stats.Queries != len(lo.AppQueryVars) {
		t.Fatalf("DQ processed %d of %d queries", stats.Queries, len(lo.AppQueryVars))
	}
}

func TestEmptyBatchRun(t *testing.T) {
	lo := genBench(t)
	res, stats := Run(lo.Graph, nil, Config{Mode: DQ, Threads: 4, TypeLevels: lo.TypeLevels})
	if len(res) != 0 || stats.Queries != 0 {
		t.Fatalf("empty batch: %d results, %d queries", len(res), stats.Queries)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{Seq: "SeqCFL", Naive: "ParCFL-naive", D: "ParCFL-D", DQ: "ParCFL-DQ"}
	for m, w := range names {
		if m.String() != w {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), w)
		}
	}
}

// TestBudgetPressureProducesETs: with sharing and a tight budget, unfinished
// jmp edges should appear, and typically some early terminations.
func TestBudgetPressureProducesETs(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: D, Threads: 1, Budget: 2000, TauF: 1, TauU: 1,
	})
	if stats.Aborted == 0 {
		t.Skip("budget 2000 did not abort anything on this benchmark")
	}
	if stats.Share.UnfinishedAdded == 0 {
		t.Fatal("aborted queries recorded no unfinished jmp edges")
	}
}
