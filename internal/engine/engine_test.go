package engine

import (
	"sort"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
)

func genBench(t testing.TB) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "enginetest", Seed: 11, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// resultMap indexes batch results by variable; completed queries only.
func resultMap(rs []QueryResult) map[pag.NodeID][]pag.NodeID {
	m := make(map[pag.NodeID][]pag.NodeID, len(rs))
	for _, r := range rs {
		if r.Aborted {
			continue
		}
		objs := append([]pag.NodeID{}, r.Objects...)
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		m[r.Var] = objs
	}
	return m
}

func sameResults(t *testing.T, name string, a, b map[pag.NodeID][]pag.NodeID) {
	t.Helper()
	for v, objs := range a {
		bObjs, ok := b[v]
		if !ok {
			continue // aborted in the other mode; allowed under budgets
		}
		if len(objs) != len(bObjs) {
			t.Fatalf("%s: var %d: %v vs %v", name, v, objs, bObjs)
		}
		for i := range objs {
			if objs[i] != bObjs[i] {
				t.Fatalf("%s: var %d: %v vs %v", name, v, objs, bObjs)
			}
		}
	}
}

// TestModesAgreeUnbudgeted is the central correctness property: with no
// budget, every mode (any thread count) must compute the exact same
// points-to sets for every query.
func TestModesAgreeUnbudgeted(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars

	seqRes, seqStats := Run(lo.Graph, queries, Config{Mode: Seq})
	if seqStats.Aborted != 0 {
		t.Fatalf("unbudgeted sequential run aborted %d queries", seqStats.Aborted)
	}
	seqMap := resultMap(seqRes)

	for _, cfg := range []Config{
		{Mode: Naive, Threads: 4},
		{Mode: D, Threads: 4, TauF: 1, TauU: 1},
		{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
	} {
		res, stats := Run(lo.Graph, queries, cfg)
		if stats.Aborted != 0 {
			t.Fatalf("%v: aborted %d queries without budget", cfg.Mode, stats.Aborted)
		}
		if stats.Queries != len(queries) {
			t.Fatalf("%v: ran %d of %d queries", cfg.Mode, stats.Queries, len(queries))
		}
		m := resultMap(res)
		if len(m) != len(seqMap) {
			t.Fatalf("%v: %d results vs %d sequential", cfg.Mode, len(m), len(seqMap))
		}
		sameResults(t, cfg.Mode.String(), seqMap, m)
		sameResults(t, cfg.Mode.String(), m, seqMap)
	}
}

// TestModesAgreeBudgeted: under a budget, queries that complete in both
// modes must agree exactly (abort sets may differ between modes).
func TestModesAgreeBudgeted(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	const B = 20000

	seqRes, _ := Run(lo.Graph, queries, Config{Mode: Seq, Budget: B})
	seqMap := resultMap(seqRes)
	for _, cfg := range []Config{
		{Mode: Naive, Threads: 4, Budget: B},
		{Mode: D, Threads: 4, Budget: B, TauF: 1, TauU: 1},
		{Mode: DQ, Threads: 4, Budget: B, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
	} {
		res, _ := Run(lo.Graph, queries, cfg)
		sameResults(t, cfg.Mode.String(), resultMap(res), seqMap)
	}
}

func TestSharingActuallyShares(t *testing.T) {
	lo := genBench(t)
	_, dStats := Run(lo.Graph, lo.AppQueryVars, Config{Mode: D, Threads: 4, TauF: 1, TauU: 1})
	if dStats.Share.FinishedAdded == 0 {
		t.Fatal("D mode recorded no finished jmp edges")
	}
	if dStats.JumpsTaken == 0 {
		t.Fatal("D mode took no shortcuts")
	}
	if dStats.StepsSaved == 0 {
		t.Fatal("D mode saved no steps")
	}
	if dStats.RS() <= 0 {
		t.Fatal("R_S not positive")
	}
}

func TestSeqForcesOneThread(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars[:4], Config{Mode: Seq, Threads: 16})
	if stats.Threads != 1 {
		t.Fatalf("Seq ran with %d threads", stats.Threads)
	}
}

func TestDQGroupStats(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: DQ, Threads: 2, TypeLevels: lo.TypeLevels, TauF: 1, TauU: 1,
	})
	if stats.NumGroups == 0 || stats.AvgGroupSize <= 0 {
		t.Fatalf("DQ group stats missing: %+v", stats)
	}
	if stats.Queries != len(lo.AppQueryVars) {
		t.Fatalf("DQ processed %d of %d queries", stats.Queries, len(lo.AppQueryVars))
	}
}

func TestEmptyBatchRun(t *testing.T) {
	lo := genBench(t)
	res, stats := Run(lo.Graph, nil, Config{Mode: DQ, Threads: 4, TypeLevels: lo.TypeLevels})
	if len(res) != 0 || stats.Queries != 0 {
		t.Fatalf("empty batch: %d results, %d queries", len(res), stats.Queries)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{Seq: "SeqCFL", Naive: "ParCFL-naive", D: "ParCFL-D", DQ: "ParCFL-DQ"}
	for m, w := range names {
		if m.String() != w {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), w)
		}
	}
}

// TestDuplicateQueriesUniformAcrossModes: a duplicate-heavy batch must be
// deduplicated the same way in every mode (regression: only DQ dropped
// duplicates, via sched.Schedule, making Stats.Queries and result slices
// incomparable across modes).
func TestDuplicateQueriesUniformAcrossModes(t *testing.T) {
	lo := genBench(t)
	base := lo.AppQueryVars
	if len(base) < 4 {
		t.Fatal("benchmark too small")
	}
	// Triple every query and sprinkle extra repeats of the first few.
	batch := make([]pag.NodeID, 0, 3*len(base)+8)
	for _, v := range base {
		batch = append(batch, v, v, v)
	}
	batch = append(batch, base[0], base[1], base[0], base[2], base[3], base[0], base[1], base[2])
	unique := len(base)

	var ref map[pag.NodeID][]pag.NodeID
	for _, cfg := range []Config{
		{Mode: Seq},
		{Mode: Naive, Threads: 3},
		{Mode: D, Threads: 3, TauF: 1, TauU: 1},
		{Mode: DQ, Threads: 3, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels},
	} {
		res, st := Run(lo.Graph, batch, cfg)
		if st.Queries != unique {
			t.Fatalf("%v: Stats.Queries = %d, want %d unique (batch of %d)",
				cfg.Mode, st.Queries, unique, len(batch))
		}
		if len(res) != unique {
			t.Fatalf("%v: %d results, want %d", cfg.Mode, len(res), unique)
		}
		seen := make(map[pag.NodeID]bool, len(res))
		for _, r := range res {
			if seen[r.Var] {
				t.Fatalf("%v: variable %d answered twice", cfg.Mode, r.Var)
			}
			seen[r.Var] = true
		}
		m := resultMap(res)
		if ref == nil {
			ref = m
		} else {
			sameResults(t, cfg.Mode.String(), ref, m)
			sameResults(t, cfg.Mode.String(), m, ref)
		}
	}
}

// TestDedupKeepsFirstOccurrenceOrder: deduplication must preserve the
// original processing order of first occurrences (Seq results are in batch
// order).
func TestDedupKeepsFirstOccurrenceOrder(t *testing.T) {
	lo := genBench(t)
	base := lo.AppQueryVars
	batch := []pag.NodeID{base[2], base[0], base[2], base[1], base[0]}
	res, _ := Run(lo.Graph, batch, Config{Mode: Seq})
	want := []pag.NodeID{base[2], base[0], base[1]}
	if len(res) != len(want) {
		t.Fatalf("got %d results, want %d", len(res), len(want))
	}
	for i, r := range res {
		if r.Var != want[i] {
			t.Fatalf("result %d is var %d, want %d", i, r.Var, want[i])
		}
	}
}

// TestBudgetPressureProducesETs: with sharing and a tight budget, unfinished
// jmp edges should appear, and typically some early terminations.
func TestBudgetPressureProducesETs(t *testing.T) {
	lo := genBench(t)
	_, stats := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: D, Threads: 1, Budget: 2000, TauF: 1, TauU: 1,
	})
	if stats.Aborted == 0 {
		t.Skip("budget 2000 did not abort anything on this benchmark")
	}
	if stats.Share.UnfinishedAdded == 0 {
		t.Fatal("aborted queries recorded no unfinished jmp edges")
	}
}

// TestRunMapped: the mapping must send every input position — including
// duplicates — to the result computed for its variable, with the result
// slice still deduplicated.
func TestRunMapped(t *testing.T) {
	lo := genBench(t)
	base := lo.AppQueryVars
	if len(base) < 4 {
		t.Fatalf("bench produced only %d query vars", len(base))
	}
	// Interleave duplicates: first four vars, then three repeats.
	queries := append(append([]pag.NodeID{}, base[:4]...), base[0], base[2], base[0])
	results, mapping, stats := RunMapped(lo.Graph, queries, Config{Mode: Seq})
	if len(results) != 4 || stats.Queries != 4 {
		t.Fatalf("expected 4 deduplicated results, got %d (stats.Queries=%d)",
			len(results), stats.Queries)
	}
	if len(mapping) != len(queries) {
		t.Fatalf("mapping length %d, want %d", len(mapping), len(queries))
	}
	for i, q := range queries {
		j := mapping[i]
		if j < 0 || j >= len(results) {
			t.Fatalf("position %d mapped out of range: %d", i, j)
		}
		if results[j].Var != q {
			t.Fatalf("position %d (var %d) mapped to result for var %d", i, q, results[j].Var)
		}
	}
	if mapping[0] != mapping[4] || mapping[0] != mapping[6] || mapping[2] != mapping[5] {
		t.Fatalf("duplicate positions did not coalesce: %v", mapping)
	}
}
