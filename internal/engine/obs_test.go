package engine

import (
	"testing"

	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// TestRunWithObsSink: a run with a sink attached must mirror its Stats into
// the sink's counters, fill per-worker timelines, and record trace events
// from every wired subsystem (engine, sched, share).
func TestRunWithObsSink(t *testing.T) {
	lo := genBench(t)
	sink := obs.New(obs.Config{Workers: 3, TraceCap: 1 << 14})
	_, st := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: DQ, Threads: 3, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels,
		ResultCache: true, Obs: sink,
	})

	if got := sink.Counter(obs.CtrQueries); got != int64(st.Queries) {
		t.Fatalf("CtrQueries = %d, stats say %d", got, st.Queries)
	}
	if got := sink.Counter(obs.CtrStepsWalked); got != st.StepsWalked() {
		t.Fatalf("CtrStepsWalked = %d, stats say %d", got, st.StepsWalked())
	}
	if got := sink.Counter(obs.CtrStepsSaved); got != st.StepsSaved {
		t.Fatalf("CtrStepsSaved = %d, stats say %d", got, st.StepsSaved)
	}
	if got := sink.Counter(obs.CtrJumpsTaken); got != st.JumpsTaken {
		t.Fatalf("CtrJumpsTaken = %d, stats say %d", got, st.JumpsTaken)
	}
	if got := sink.Counter(obs.CtrJmpFinishedIns); got != st.Share.FinishedAdded {
		t.Fatalf("CtrJmpFinishedIns = %d, stats say %d", got, st.Share.FinishedAdded)
	}
	if got := sink.Counter(obs.CtrCacheHits); got != st.Cache.Hits {
		t.Fatalf("CtrCacheHits = %d, stats say %d", got, st.Cache.Hits)
	}
	if sink.Gauge(obs.GaugeWorkers) != 3 {
		t.Fatalf("GaugeWorkers = %d", sink.Gauge(obs.GaugeWorkers))
	}

	// Per-worker timelines must cover the whole batch and agree with the
	// walked-steps stats.
	var queries, walked int64
	for w, ws := range sink.Workers() {
		if ws.StopNS < ws.StartNS {
			t.Fatalf("worker %d timeline inverted: %+v", w, ws)
		}
		queries += ws.Queries
		walked += ws.Walked
		if ws.Walked != st.WalkedPerWorker[w] {
			t.Fatalf("worker %d: timeline walked %d != stats %d", w, ws.Walked, st.WalkedPerWorker[w])
		}
	}
	if queries != int64(st.Queries) || walked != st.StepsWalked() {
		t.Fatalf("timelines: %d queries / %d walked, stats %d / %d",
			queries, walked, st.Queries, st.StepsWalked())
	}

	// The schedule and run timers fired; the trace has events of the
	// expected kinds.
	if sink.Timer(obs.TmSchedule).Count != 1 || sink.Timer(obs.TmRun).Count != 1 {
		t.Fatalf("timers: %+v %+v", sink.Timer(obs.TmSchedule), sink.Timer(obs.TmRun))
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range sink.Snapshot().Trace {
		kinds[e.Kind]++
	}
	for _, want := range []obs.EventKind{
		obs.EvWorkerStart, obs.EvWorkerStop, obs.EvUnitClaim,
		obs.EvQueryDone, obs.EvSchedPlan, obs.EvJmpInsert,
	} {
		if kinds[want] == 0 {
			t.Fatalf("no %v events in trace (kinds: %v)", want, kinds)
		}
	}
}

// TestRunSpanTracing: with span tracing on, a run records one SpQuery span
// per query on its worker's track, per-worker and per-unit parents, exactly
// one SpRun root, the scheduler phases, and per-query latency/steps
// histograms — the structure the trace-event exporter renders.
func TestRunSpanTracing(t *testing.T) {
	lo := genBench(t)
	const threads = 3
	sink := obs.New(obs.Config{Workers: threads, TraceCap: 256, SpanCap: 1 << 16})
	_, st := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: DQ, Threads: threads, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels, Obs: sink,
	})

	spans, dropped := sink.Spans()
	if dropped != 0 {
		t.Fatalf("%d spans dropped with a %d cap", dropped, 1<<16)
	}
	byKind := map[obs.SpanKind]int{}
	queryWorkers := map[int32]bool{}
	for _, sp := range spans {
		byKind[sp.Kind]++
		if sp.Dur < 0 {
			t.Fatalf("negative duration: %+v", sp)
		}
		if sp.Kind.Instant() && sp.Dur != 0 {
			t.Fatalf("instant with duration: %+v", sp)
		}
		if sp.Kind == obs.SpQuery {
			if sp.Worker < 0 || sp.Worker >= threads {
				t.Fatalf("query span off any worker track: %+v", sp)
			}
			queryWorkers[sp.Worker] = true
		}
	}
	if byKind[obs.SpQuery] != st.Queries {
		t.Fatalf("%d query spans for %d queries", byKind[obs.SpQuery], st.Queries)
	}
	if byKind[obs.SpRun] != 1 {
		t.Fatalf("%d run spans, want 1", byKind[obs.SpRun])
	}
	if byKind[obs.SpWorker] != threads {
		t.Fatalf("%d worker spans, want %d", byKind[obs.SpWorker], threads)
	}
	if byKind[obs.SpUnit] != st.NumGroups {
		t.Fatalf("%d unit spans for %d groups", byKind[obs.SpUnit], st.NumGroups)
	}
	if byKind[obs.SpCompPts] == 0 {
		t.Fatal("no comp_pts traversal spans")
	}
	for _, want := range []obs.SpanKind{obs.SpSchedule, obs.SpSchedGroup, obs.SpSchedOrder, obs.SpSchedBalance} {
		if byKind[want] != 1 {
			t.Fatalf("%d %v spans, want 1 (kinds: %v)", byKind[want], want, byKind)
		}
	}
	if st.Share.FinishedAdded > 0 && byKind[obs.SpJmpInsert] == 0 {
		t.Fatal("jmp insertions happened but no SpJmpInsert instants")
	}

	lat := sink.Hist(obs.HistQueryNS)
	steps := sink.Hist(obs.HistQuerySteps)
	if lat.Count != int64(st.Queries) || steps.Count != int64(st.Queries) {
		t.Fatalf("histograms observed %d/%d queries, stats say %d", lat.Count, steps.Count, st.Queries)
	}
	if steps.Sum != st.TotalSteps {
		t.Fatalf("steps histogram sum %d != stats total %d", steps.Sum, st.TotalSteps)
	}

	// The exported trace has one thread per worker that ran queries, plus
	// the shared engine track.
	tf := obs.TraceEvents(sink)
	tids := map[int64]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "M" {
			tids[ev.Tid] = true
		}
	}
	if !tids[1] {
		t.Fatal("no events on the shared engine track")
	}
	for w := range queryWorkers {
		if !tids[2+int64(w)] {
			t.Fatalf("worker %d ran queries but has no trace thread", w)
		}
	}
}

// TestRunObsMatchesNilObs: attaching a sink must not change analysis
// results. (Step totals in parallel sharing modes vary with scheduling
// timing, sink or not, so only the answers are compared.)
func TestRunObsMatchesNilObs(t *testing.T) {
	lo := genBench(t)
	cfg := Config{Mode: D, Threads: 2, TauF: 1, TauU: 1}
	resA, stA := Run(lo.Graph, lo.AppQueryVars, cfg)
	cfg.Obs = obs.New(obs.Config{Workers: 2, TraceCap: 256})
	resB, stB := Run(lo.Graph, lo.AppQueryVars, cfg)
	if stA.Queries != stB.Queries || stA.Completed != stB.Completed {
		t.Fatalf("batch shape diverges with sink: %+v vs %+v", stA, stB)
	}
	sameResults(t, "obs", resultMap(resA), resultMap(resB))
	sameResults(t, "obs", resultMap(resB), resultMap(resA))
}

// TestNilSinkQueryLoopNoAllocs: the per-query observability hooks must not
// allocate when the sink is nil — the acceptance bar for leaving the hooks
// unconditionally in the hot loop.
func TestNilSinkQueryLoopNoAllocs(t *testing.T) {
	var sink *obs.Sink
	var local obs.WorkerStats
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact hook sequence the worker loop runs per unit + query.
		sink.Trace(obs.EvUnitClaim, 0, 1, 1)
		sink.Add(obs.CtrUnitsClaimed, 1)
		unitT0 := sink.SpanStart()
		qT0 := sink.Now()
		local.Units++
		local.Walked += 10
		local.Steps += 12
		local.Queries++
		if sink.Enabled() {
			t.Fatal("nil sink enabled")
		}
		sink.Trace(obs.EvQueryDone, 0, 1, 12)
		sink.Observe(obs.HistQueryNS, sink.Now()-qT0)
		sink.Observe(obs.HistQuerySteps, 12)
		sink.Span(obs.SpQuery, 0, qT0, 1, 12, 0)
		sink.Span(obs.SpUnit, 0, unitT0, 1, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink hot loop allocated %.1f per query, want 0", allocs)
	}
}

func benchLowered(b *testing.B) ([]pag.NodeID, *pag.Graph, []int) {
	b.Helper()
	lo := genBench(b)
	return lo.AppQueryVars, lo.Graph, lo.TypeLevels
}

// BenchmarkRunNilObs measures the engine loop with observability disabled —
// the baseline every obs-enabled number is compared against. Allocations
// are reported per batch.
func BenchmarkRunNilObs(b *testing.B) {
	queries, g, levels := benchLowered(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, queries, Config{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: levels})
	}
}

// BenchmarkRunWithObs is the same batch with a live sink and tracing, for
// measuring the enabled-path overhead.
func BenchmarkRunWithObs(b *testing.B) {
	queries, g, levels := benchLowered(b)
	sink := obs.New(obs.Config{Workers: 4, TraceCap: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, queries, Config{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: levels, Obs: sink})
	}
}

// TestRunDrainsFlightRecorderGauges: the scheduler gauges the flight
// recorder samples must land at their quiesced values once a run finishes —
// worklist drained, no queries in flight, share sizes matching stats.
func TestRunDrainsFlightRecorderGauges(t *testing.T) {
	lo := genBench(t)
	sink := obs.New(obs.Config{Workers: 2})
	_, st := Run(lo.Graph, lo.AppQueryVars, Config{
		Mode: DQ, Threads: 2, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels, Obs: sink,
	})

	if got := sink.Gauge(obs.GaugeWorklistDepth); got != 0 {
		t.Errorf("worklist_depth after run = %d, want 0", got)
	}
	if got := sink.Gauge(obs.GaugeInflight); got != 0 {
		t.Errorf("inflight_queries after run = %d, want 0", got)
	}
	if got := sink.Gauge(obs.GaugeSchedComponents); got <= 0 {
		t.Errorf("sched_components = %d, want > 0", got)
	}
	wantShare := st.Share.FinishedAdded + st.Share.UnfinishedAdded
	gotShare := sink.Gauge(obs.GaugeShareFinished) + sink.Gauge(obs.GaugeShareUnfinished)
	if gotShare != wantShare {
		t.Errorf("share size gauges = %d, stats added %d", gotShare, wantShare)
	}
	if hw := sink.Gauge(obs.GaugeShareHighWater); hw != wantShare {
		t.Errorf("share high-water gauge = %d, want %d", hw, wantShare)
	}
	if got := sink.Counter(obs.CtrShareLookups); got != st.Share.Lookups {
		t.Errorf("share_lookups counter = %d, stats say %d", got, st.Share.Lookups)
	}
	if got := sink.Counter(obs.CtrShareHits); got != st.Share.LookupHits {
		t.Errorf("share_hits counter = %d, stats say %d", got, st.Share.LookupHits)
	}

	// A recorder attached to the same sink picks those values up.
	rec := obs.NewRecorder(sink, obs.RecorderConfig{Cap: 4})
	rec.SampleOnce()
	ts := rec.Snapshot()
	if i := ts.Index("share_high_water"); i < 0 || ts.Points[0].V[i] != float64(wantShare) {
		t.Errorf("recorder share_high_water sample wrong (idx %d)", i)
	}
}
