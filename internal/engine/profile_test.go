package engine

import (
	"testing"

	"parcfl/internal/autopsy"
)

// TestBatchConservation is the bench-grid conservation test: across every
// mode, with and without budgets tight enough to abort and early-terminate
// queries, and with the result cache on, each query's attribution must sum
// exactly to its Steps, and the batch heat profile must attribute every
// step of Stats.TotalSteps.
func TestBatchConservation(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars

	grid := []struct {
		name string
		cfg  Config
	}{
		{"seq", Config{Mode: Seq}},
		{"naive-4", Config{Mode: Naive, Threads: 4}},
		{"d-4", Config{Mode: D, Threads: 4, TauF: 1, TauU: 1}},
		{"dq-4", Config{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels}},
		{"dq-4-cache", Config{Mode: DQ, Threads: 4, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels, ResultCache: true}},
		// Tight budgets force aborts; with sharing on, recorded unfinished
		// markers then force early terminations too.
		{"seq-b60", Config{Mode: Seq, Budget: 60}},
		{"d-4-b60", Config{Mode: D, Threads: 4, Budget: 60, TauF: 1, TauU: 1}},
		{"dq-4-b60", Config{Mode: DQ, Threads: 4, Budget: 60, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels}},
		{"dq-4-b60-cache", Config{Mode: DQ, Threads: 4, Budget: 60, TauF: 1, TauU: 1, TypeLevels: lo.TypeLevels, ResultCache: true}},
	}

	sawAbort, sawET := false, false
	for _, tc := range grid {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			col := autopsy.NewCollector(lo.Graph, tc.cfg.Budget)
			tc.cfg.Heat = col
			res, stats := Run(lo.Graph, queries, tc.cfg)

			var attributed int64
			for _, r := range res {
				if r.Prof == nil {
					t.Fatalf("var %d: no attribution with Heat set", r.Var)
				}
				if got := r.Prof.Sum(); got != int64(r.Steps) {
					t.Fatalf("var %d: attribution sums to %d, Steps = %d", r.Var, got, r.Steps)
				}
				attributed += r.Prof.Sum()
				if r.Aborted {
					sawAbort = true
				}
				if r.EarlyTerminated {
					sawET = true
					if r.Prof.ET == nil {
						t.Fatalf("var %d: early-terminated but no ETRecord", r.Var)
					}
				}
			}
			if attributed != stats.TotalSteps {
				t.Fatalf("batch attribution %d != Stats.TotalSteps %d", attributed, stats.TotalSteps)
			}

			h := col.Heat()
			if h.Queries != stats.Queries {
				t.Fatalf("heat saw %d queries, stats %d", h.Queries, stats.Queries)
			}
			if h.TotalSteps != stats.TotalSteps {
				t.Fatalf("heat total %d != stats total %d", h.TotalSteps, stats.TotalSteps)
			}
			if h.AttributedSteps != h.TotalSteps {
				t.Fatalf("heat attributed %d != total %d (conservation)", h.AttributedSteps, h.TotalSteps)
			}
			if h.Aborted+h.EarlyTerminated != stats.Aborted {
				t.Fatalf("heat aborts %d+%d != stats %d", h.Aborted, h.EarlyTerminated, stats.Aborted)
			}
			if h.EarlyTerminated != stats.EarlyTerminations {
				t.Fatalf("heat ETs %d != stats %d", h.EarlyTerminated, stats.EarlyTerminations)
			}
			if tc.cfg.Mode == DQ && len(h.Units) == 0 {
				t.Fatal("DQ run recorded no unit heat")
			}
		})
	}
	if !sawAbort {
		t.Fatal("grid never aborted a query; tighten the test budget")
	}
	if !sawET {
		t.Fatal("grid never early-terminated a query; tighten the test budget")
	}
}

// TestProfileOffByDefault: without Profile or Heat, results carry no
// attribution (the hooks stay dormant).
func TestProfileOffByDefault(t *testing.T) {
	lo := genBench(t)
	res, _ := Run(lo.Graph, lo.AppQueryVars[:4], Config{Mode: Seq})
	for _, r := range res {
		if r.Prof != nil {
			t.Fatalf("var %d: attribution present with profiling off", r.Var)
		}
	}
}

// TestProfileWithoutHeat: Profile alone attaches per-query attributions
// without needing a collector.
func TestProfileWithoutHeat(t *testing.T) {
	lo := genBench(t)
	res, stats := Run(lo.Graph, lo.AppQueryVars[:4], Config{Mode: Seq, Profile: true})
	var sum int64
	for _, r := range res {
		if r.Prof == nil {
			t.Fatalf("var %d: no attribution with Profile set", r.Var)
		}
		sum += r.Prof.Sum()
	}
	if sum != stats.TotalSteps {
		t.Fatalf("attributed %d != total %d", sum, stats.TotalSteps)
	}
}
