// Package engine runs batches of points-to queries over a PAG in the four
// configurations the paper evaluates (Section IV-C):
//
//   - Seq      — SEQCFL: one thread, no sharing, no scheduling;
//   - Naive    — PARCFL_naive: t threads fetching queries from a shared
//     work list, no sharing (Section III-A);
//   - D        — PARCFL_D: Naive plus the data-sharing scheme (jmp edges,
//     Section III-B);
//   - DQ       — PARCFL_DQ: D plus the query-scheduling scheme (grouping,
//     CD/DD ordering, Section III-C).
//
// Workers are goroutines, one cfl.Solver each; the jmp-edge store is the
// only shared mutable state. Work is distributed by an atomic cursor over
// the scheduled units — individual queries for Seq/Naive/D, whole groups
// for DQ ("we assign a group of queries rather than a single query to a
// thread at a time to reduce synchronisation overhead", Section III-C1).
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parcfl/internal/autopsy"
	"parcfl/internal/cfl"
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/sched"
	"parcfl/internal/share"
)

// Mode selects the parallelisation strategy.
type Mode uint8

const (
	// Seq is the sequential baseline SEQCFL.
	Seq Mode = iota
	// Naive is inter-query parallelism with a shared work list only.
	Naive
	// D adds data sharing (jmp edges).
	D
	// DQ adds query scheduling on top of data sharing.
	DQ
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case Seq:
		return "SeqCFL"
	case Naive:
		return "ParCFL-naive"
	case D:
		return "ParCFL-D"
	case DQ:
		return "ParCFL-DQ"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config configures a Run.
type Config struct {
	Mode Mode
	// Threads is the worker count; 0 means GOMAXPROCS. Seq forces 1.
	Threads int
	// Budget is the per-query step budget B (paper: 75,000). 0 disables.
	Budget int
	// TauF/TauU are the selective-insertion thresholds of Section IV-A.
	// Zero values select the paper defaults (100 / 10,000); negative
	// values disable the thresholds entirely (insert everything), which
	// is the ablation of Fig. 7.
	TauF, TauU int
	// TypeLevels feeds the scheduler's dependence-depth heuristic (only
	// used by DQ). May be nil.
	TypeLevels []int
	// Store lets the caller share a pre-populated jmp store across runs;
	// normally nil, in which case D/DQ create a fresh one.
	Store *share.Store
	// ResultCache additionally shares whole memoised traversal results
	// across queries and workers (the "ad-hoc caching" extension; see
	// internal/ptcache). Works with any mode.
	ResultCache bool
	// Cache lets the caller share a pre-populated result cache across
	// runs, like Store; implies ResultCache. Normally nil, in which case
	// ResultCache creates a fresh one per run.
	Cache *ptcache.Cache
	// ContextK k-limits call strings (0 = unlimited, the paper's setting).
	ContextK int
	// Kernel, when non-nil, runs every worker's solver in kernel mode over
	// this preprocessed form of the graph (see internal/kernel and
	// cfl.Config.Kernel). Results, step counts and schedules are identical
	// to a run without it; only the traversal's data layout changes.
	Kernel *kernel.Prep
	// Obs, when non-nil, receives run metrics, trace events and per-worker
	// timelines (see internal/obs). A nil sink costs nothing: every hook is
	// a nil check. Stores and caches created by Run are attached to it;
	// a caller-provided Store keeps whatever sink it already has.
	Obs *obs.Sink
	// Profile turns on per-query budget attribution: every QueryResult
	// carries a Prof breakdown whose summed steps equal Steps exactly
	// (see cfl.Config.Profile). Off, the solver hooks cost one nil check.
	Profile bool
	// Heat, when non-nil, aggregates every query's attribution into a
	// batch PAG heat profile and retains autopsy reports for aborted
	// queries (see internal/autopsy). Implies Profile. A nil collector
	// costs nothing.
	Heat *autopsy.Collector
	// Tag is an opaque caller-supplied batch identifier carried into the
	// run's SpRun span (its third payload), letting trace consumers join
	// an engine batch back to whoever dispatched it — the resident server
	// stamps its batch sequence number here. Zero means untagged.
	Tag int64
}

func (c Config) threads() int {
	if c.Mode == Seq {
		return 1
	}
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) sharing() bool { return c.Mode == D || c.Mode == DQ }

// QueryResult is the outcome of one query in a batch run.
type QueryResult struct {
	Var pag.NodeID
	// Objects is the deduplicated allocation-site projection of the
	// points-to set (partial if Aborted).
	Objects []pag.NodeID
	// Contexts is the size of the full context-sensitive result set.
	Contexts        int
	Aborted         bool
	EarlyTerminated bool
	Steps           int
	JumpsTaken      int
	StepsSaved      int
	// Prof is the budget attribution (nil unless Config.Profile or
	// Config.Heat is set). Its Sum() equals Steps exactly.
	Prof *cfl.Attribution
}

// Stats aggregates a batch run.
type Stats struct {
	Mode    Mode
	Threads int
	Queries int
	// Completed/Aborted/EarlyTerminations partition the batch (ETs are a
	// subset of Aborted).
	Completed         int
	Aborted           int
	EarlyTerminations int
	// TotalSteps is the number of budget steps consumed by all queries
	// (including steps charged for shortcuts). StepsSaved is the portion
	// that was satisfied by jmp shortcuts rather than walked; the
	// difference is the number of steps actually traversed.
	TotalSteps int64
	StepsSaved int64
	JumpsTaken int64
	// Wall is the batch wall-clock time.
	Wall time.Duration
	// Share is the jmp store's counters (zero value when sharing is off).
	Share share.Stats
	// Cache is the result cache's counters (zero value when disabled).
	Cache ptcache.Stats
	// AvgGroupSize and NumGroups describe the schedule (DQ only): Sg of
	// Table I is AvgGroupSize.
	AvgGroupSize float64
	NumGroups    int
	// WalkedPerWorker records, per worker goroutine, the steps actually
	// traversed by the queries it processed. On hosts with fewer cores
	// than workers (the paper used 16 cores), max(WalkedPerWorker) is a
	// hardware-independent model of the parallel critical path; see
	// ModeledSpeedup.
	WalkedPerWorker []int64
}

// MaxWorkerWalked returns the heaviest worker's walked steps — the modeled
// parallel critical path.
func (s *Stats) MaxWorkerWalked() int64 {
	var m int64
	for _, w := range s.WalkedPerWorker {
		if w > m {
			m = w
		}
	}
	return m
}

// ModeledSpeedup returns the work-model speedup of this run relative to a
// baseline's walked steps: baselineWalked / max(WalkedPerWorker). It models
// an idealised machine with one core per worker, which is how speedups are
// reported when the host has fewer physical cores than the paper's testbed
// (a documented substitution); wall-clock speedups are reported alongside.
func (s *Stats) ModeledSpeedup(baselineWalked int64) float64 {
	m := s.MaxWorkerWalked()
	if m == 0 {
		return 0
	}
	return float64(baselineWalked) / float64(m)
}

// StepsWalked returns the steps actually traversed (total minus shortcut).
func (s *Stats) StepsWalked() int64 { return s.TotalSteps - s.StepsSaved }

// RS returns the R_S ratio of Table I: steps saved by jmp edges over steps
// traversed across original edges.
func (s *Stats) RS() float64 {
	w := s.StepsWalked()
	if w == 0 {
		return 0
	}
	return float64(s.StepsSaved) / float64(w)
}

// dedup returns the batch with duplicate variables removed, keeping first
// occurrences in order. The original slice is returned untouched when it has
// no duplicates.
func dedup(queries []pag.NodeID) []pag.NodeID {
	seen := make(map[pag.NodeID]struct{}, len(queries))
	for i, v := range queries {
		if _, dup := seen[v]; dup {
			// First duplicate found: copy the unique prefix and filter
			// the rest.
			out := append([]pag.NodeID(nil), queries[:i]...)
			for _, w := range queries[i:] {
				if _, d := seen[w]; d {
					continue
				}
				seen[w] = struct{}{}
				out = append(out, w)
			}
			return out
		}
		seen[v] = struct{}{}
	}
	return queries
}

// RunMapped is Run plus the query→result dedup mapping: mapping[i] is the
// index into the returned results of the original batch's i-th query.
// Duplicate batch positions map to the one shared result, and DQ's
// scheduler-imposed processing order is resolved here — callers that fan one
// coalesced computation back out to many waiters (the resident server) index
// straight through the mapping instead of re-sorting results by NodeID.
func RunMapped(g *pag.Graph, queries []pag.NodeID, cfg Config) ([]QueryResult, []int, Stats) {
	results, stats := Run(g, queries, cfg)
	byVar := make(map[pag.NodeID]int, len(results))
	for i := range results {
		byVar[results[i].Var] = i
	}
	mapping := make([]int, len(queries))
	for i, q := range queries {
		mapping[i] = byVar[q]
	}
	return results, mapping, stats
}

// Run executes the query batch and returns per-query results in processing
// order together with aggregate statistics. Duplicate query variables are
// answered once: the batch is deduplicated up front (first occurrences kept
// in order) in every mode, so Stats.Queries, step totals and result slices
// are comparable across Seq/Naive/D/DQ regardless of batch duplicates.
func Run(g *pag.Graph, queries []pag.NodeID, cfg Config) ([]QueryResult, Stats) {
	threads := cfg.threads()
	stats := Stats{Mode: cfg.Mode, Threads: threads}
	sink := cfg.Obs
	queries = dedup(queries)

	var store *share.Store
	if cfg.sharing() {
		store = cfg.Store
		if store == nil {
			sc := share.DefaultConfig()
			if cfg.TauF != 0 {
				sc.TauF = max(cfg.TauF, 0)
			}
			if cfg.TauU != 0 {
				sc.TauU = max(cfg.TauU, 0)
			}
			store = share.NewStore(sc)
			store.SetObs(sink)
		}
	}

	cache := cfg.Cache
	if cache == nil && cfg.ResultCache {
		cache = ptcache.New(64)
		cache.SetObs(sink)
	}

	// Build the work units.
	var units [][]pag.NodeID
	if cfg.Mode == DQ {
		plan := sched.ScheduleObs(g, queries, cfg.TypeLevels, sink)
		units = plan.Groups
		stats.AvgGroupSize = plan.AvgGroupSize
		stats.NumGroups = len(plan.Groups)
	} else {
		units = make([][]pag.NodeID, len(queries))
		for i, q := range queries {
			units[i] = []pag.NodeID{q}
		}
	}
	sink.SetGauge(obs.GaugeWorkers, int64(threads))
	sink.SetGauge(obs.GaugeUnits, int64(len(units)))
	sink.SetGauge(obs.GaugeWorklistDepth, int64(len(units)))
	sink.SetGauge(obs.GaugeInflight, 0)
	total := 0
	for _, u := range units {
		total += len(u)
	}
	stats.Queries = total

	// Pre-size the result slots: one contiguous region per unit, so
	// workers write disjoint slices without locking.
	offsets := make([]int, len(units)+1)
	for i, u := range units {
		offsets[i+1] = offsets[i] + len(u)
	}
	results := make([]QueryResult, total)

	start := time.Now()
	runT0 := sink.SpanStart()
	walked := make([]int64, threads)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink.WorkerStarted(w)
			// Accumulate per-worker tallies in locals and store them once
			// at exit: the walked slice's adjacent entries live on shared
			// cache lines, so per-query writes from all workers would
			// false-share them for the whole run.
			var local obs.WorkerStats
			defer func() {
				walked[w] = local.Walked
				sink.WorkerStopped(w, local)
			}()
			solver := cfl.New(g, cfl.Config{
				Budget: cfg.Budget, Share: store, Cache: cache, ContextK: cfg.ContextK,
				Kernel: cfg.Kernel,
				Obs:    sink, Worker: int32(w),
				Profile: cfg.Profile || cfg.Heat != nil,
			})
			for {
				u := int(cursor.Add(1)) - 1
				if u >= len(units) {
					return
				}
				unitT0 := sink.SpanStart()
				sink.Trace(obs.EvUnitClaim, int32(w), int64(u), int64(len(units[u])))
				sink.Add(obs.CtrUnitsClaimed, 1)
				// Racing workers may write depths slightly out of order;
				// the gauge is a sampling target for the flight recorder's
				// drain-rate view, not an exact queue length.
				sink.SetGauge(obs.GaugeWorklistDepth, int64(len(units)-u-1))
				local.Units++
				out := results[offsets[u]:offsets[u+1]]
				var unitSteps int64
				for i, v := range units[u] {
					// sink.Now is the per-query clock for both the latency
					// histogram and the query span (0 when the sink is nil).
					qT0 := sink.Now()
					sink.AddGauge(obs.GaugeInflight, 1)
					r := solver.PointsTo(v, pag.EmptyContext)
					sink.AddGauge(obs.GaugeInflight, -1)
					out[i] = QueryResult{
						Var:             v,
						Objects:         r.Objects(),
						Contexts:        len(r.PointsTo),
						Aborted:         r.Aborted,
						EarlyTerminated: r.EarlyTerminated,
						Steps:           r.Steps,
						JumpsTaken:      r.JumpsTaken,
						StepsSaved:      r.StepsSaved,
						Prof:            r.Prof,
					}
					cfg.Heat.Record(&r)
					unitSteps += int64(r.Steps)
					qw := int64(r.Steps - r.StepsSaved)
					local.Walked += qw
					local.Steps += int64(r.Steps)
					local.Queries++
					if sink.Enabled() {
						sink.Add(obs.CtrQueries, 1)
						sink.Add(obs.CtrStepsWalked, qw)
						sink.Add(obs.CtrStepsSaved, int64(r.StepsSaved))
						sink.Add(obs.CtrJumpsTaken, int64(r.JumpsTaken))
						sink.Observe(obs.HistQueryNS, sink.Now()-qT0)
						sink.Observe(obs.HistQuerySteps, int64(r.Steps))
						steps := int64(r.Steps)
						if r.Aborted {
							sink.Add(obs.CtrQueriesAborted, 1)
							steps = -steps
							if r.EarlyTerminated {
								sink.Add(obs.CtrEarlyTerms, 1)
								sink.Trace(obs.EvEarlyTerm, int32(w), int64(v), int64(r.Steps))
							}
						}
						sink.Trace(obs.EvQueryDone, int32(w), int64(v), steps)
						sink.Span(obs.SpQuery, int32(w), qT0, int64(v), steps, int64(r.JumpsTaken))
					}
				}
				cfg.Heat.RecordUnit(u, len(units[u]), unitSteps)
				sink.Span(obs.SpUnit, int32(w), unitT0, int64(u), int64(len(units[u])), 0)
			}
		}(w)
	}
	wg.Wait()
	stats.WalkedPerWorker = walked
	stats.Wall = time.Since(start)
	sink.Time(obs.TmRun, stats.Wall)
	sink.Span(obs.SpRun, obs.NoWorker, runT0, int64(total), int64(len(units)), cfg.Tag)

	for i := range results {
		r := &results[i]
		stats.TotalSteps += int64(r.Steps)
		stats.StepsSaved += int64(r.StepsSaved)
		stats.JumpsTaken += int64(r.JumpsTaken)
		if r.Aborted {
			stats.Aborted++
			if r.EarlyTerminated {
				stats.EarlyTerminations++
			}
		} else {
			stats.Completed++
		}
	}
	if store != nil {
		stats.Share = store.Snapshot()
	}
	if cache != nil {
		stats.Cache = cache.Snapshot()
	}
	return results, stats
}
