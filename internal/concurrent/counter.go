package concurrent

import "sync/atomic"

// Counter is a sharded monotone counter for hot-path statistics. Each
// goroutine should add through its own lane (by worker index) to avoid
// cache-line ping-pong; Sum folds the lanes.
type Counter struct {
	lanes []paddedInt64
}

type paddedInt64 struct {
	v int64
	_ [56]byte
}

// NewCounter creates a counter with the given number of lanes (minimum 1).
func NewCounter(lanes int) *Counter {
	if lanes < 1 {
		lanes = 1
	}
	return &Counter{lanes: make([]paddedInt64, lanes)}
}

// Add adds delta through lane. Lane indexes wrap, so any non-negative worker
// index is safe.
func (c *Counter) Add(lane int, delta int64) {
	atomic.AddInt64(&c.lanes[lane%len(c.lanes)].v, delta)
}

// Sum returns the total across lanes.
func (c *Counter) Sum() int64 {
	var t int64
	for i := range c.lanes {
		t += atomic.LoadInt64(&c.lanes[i].v)
	}
	return t
}

// Reset zeroes all lanes.
func (c *Counter) Reset() {
	for i := range c.lanes {
		atomic.StoreInt64(&c.lanes[i].v, 0)
	}
}
