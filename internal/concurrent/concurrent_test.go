package concurrent

import (
	"sync"
	"testing"
	"testing/quick"
)

func newIntMap(shards int) *Map[int, int] {
	return NewMap[int, int](shards, func(k int) uint64 { return HashUint64(HashSeed, uint64(k)) })
}

func TestMapBasic(t *testing.T) {
	m := newIntMap(8)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	v, inserted := m.PutIfAbsent(1, 100)
	if !inserted || v != 100 {
		t.Fatalf("first insert: v=%d inserted=%v", v, inserted)
	}
	v, inserted = m.PutIfAbsent(1, 200)
	if inserted || v != 100 {
		t.Fatalf("second insert must lose: v=%d inserted=%v", v, inserted)
	}
	got, ok := m.Get(1)
	if !ok || got != 100 {
		t.Fatalf("Get = %d,%v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapShardRounding(t *testing.T) {
	for _, shards := range []int{0, 1, 3, 7, 64} {
		m := newIntMap(shards)
		for i := 0; i < 100; i++ {
			m.PutIfAbsent(i, i)
		}
		if m.Len() != 100 {
			t.Fatalf("shards=%d: Len = %d", shards, m.Len())
		}
	}
}

func TestMapRange(t *testing.T) {
	m := newIntMap(4)
	want := map[int]int{}
	for i := 0; i < 50; i++ {
		m.PutIfAbsent(i, i*i)
		want[i] = i * i
	}
	got := map[int]int{}
	m.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(k, v int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

func TestMapClear(t *testing.T) {
	m := newIntMap(4)
	m.PutIfAbsent(1, 1)
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

// Concurrent hammer: many goroutines race PutIfAbsent on the same keys;
// exactly one insert per key must win and all observers must agree on the
// winner. Run with -race.
func TestMapConcurrentPutIfAbsent(t *testing.T) {
	m := newIntMap(16)
	const keys = 200
	const workers = 8
	winners := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			winners[w] = make([]int, keys)
			for k := 0; k < keys; k++ {
				v, _ := m.PutIfAbsent(k, w*1000+k)
				winners[w][k] = v
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		v0, _ := m.Get(k)
		for w := 0; w < workers; w++ {
			if winners[w][k] != v0 {
				t.Fatalf("key %d: worker %d saw %d, final %d", k, w, winners[w][k], v0)
			}
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Sum(); got != 8000 {
		t.Fatalf("Sum = %d, want 8000", got)
	}
	c.Reset()
	if got := c.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %d", got)
	}
	// Zero lanes clamps to 1.
	c0 := NewCounter(0)
	c0.Add(5, 3)
	if c0.Sum() != 3 {
		t.Fatal("zero-lane counter broken")
	}
}

// Property: HashBytes is deterministic and respects prefix sensitivity well
// enough that differing strings rarely collide (smoke-level check).
func TestHashDeterminism(t *testing.T) {
	prop := func(s string) bool {
		return HashBytes(HashSeed, s) == HashBytes(HashSeed, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if HashBytes(HashSeed, "a") == HashBytes(HashSeed, "b") {
		t.Fatal("trivial collision")
	}
	if HashUint64(HashSeed, 1) == HashUint64(HashSeed, 2) {
		t.Fatal("trivial uint collision")
	}
}
