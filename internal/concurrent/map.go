// Package concurrent provides the small set of concurrency utilities the
// parallel analysis needs: a lock-striped hash map standing in for the
// java.util.concurrent.ConcurrentHashMap the paper uses to manage jmp edges
// (Section IV-A), and cheap sharded counters for statistics.
package concurrent

import "sync"

// Map is a lock-striped concurrent hash map with put-if-absent semantics.
// Striping bounds contention: each key hashes to one of the shards, and all
// operations on that key take only that shard's lock.
type Map[K comparable, V any] struct {
	shards []mapShard[K, V]
	mask   uint64
	hash   func(K) uint64
}

type mapShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	_  [40]byte // pad to reduce false sharing between adjacent shards
}

// NewMap creates a map with the given shard count (rounded up to a power of
// two, minimum 1) and hash function.
func NewMap[K comparable, V any](shards int, hash func(K) uint64) *Map[K, V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map[K, V]{
		shards: make([]mapShard[K, V], n),
		mask:   uint64(n - 1),
		hash:   hash,
	}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

func (m *Map[K, V]) shard(k K) *mapShard[K, V] {
	return &m.shards[m.hash(k)&m.mask]
}

// Get returns the value stored for k, if any.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// PutIfAbsent stores v for k unless k already has a value. It returns the
// value now associated with k and whether this call inserted it. This is the
// only write primitive, mirroring the paper's insertion discipline: when two
// threads race to record jmp edges for the same (node, context) key, exactly
// one wins and the other's work is discarded.
func (m *Map[K, V]) PutIfAbsent(k K, v V) (V, bool) {
	s := m.shard(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.mu.Unlock()
		return old, false
	}
	s.m[k] = v
	s.mu.Unlock()
	return v, true
}

// Replace swaps the value stored for k from old to new, compare-and-swap
// style: it succeeds only if k currently maps to old (compared with ==, so
// pointer values compare by identity). Returns whether the swap happened.
func (m *Map[K, V]) Replace(k K, old, new V) bool {
	s := m.shard(k)
	s.mu.Lock()
	cur, ok := s.m[k]
	if !ok || any(cur) != any(old) {
		s.mu.Unlock()
		return false
	}
	s.m[k] = new
	s.mu.Unlock()
	return true
}

// Len returns the total number of entries. It takes each shard lock in turn,
// so the result is only a consistent snapshot when writers are quiescent.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries written
// concurrently with the iteration may or may not be observed. The callback
// must not call back into the same Map shard (it runs under the shard lock).
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Clear removes all entries.
func (m *Map[K, V]) Clear() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.m = make(map[K]V)
		s.mu.Unlock()
	}
}

// FNV-1a constants for the hash helpers.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashBytes is FNV-1a over a byte string, seeded with h (pass HashSeed for a
// fresh hash).
func HashBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// HashUint64 folds v into h, FNV-1a style, one byte at a time.
func HashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// HashSeed is the initial value for the hash helpers.
const HashSeed = uint64(fnvOffset)
