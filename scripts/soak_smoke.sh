#!/usr/bin/env bash
# Soak smoke test: boot parcfld cold, snapshot it, restart warm with request
# tracing on, soak it with open-loop load (parcflload), and assert:
#   - the soak report is well-formed parcfl-soak/v1 with zero error-class
#     responses and a top-K slowest-request list;
#   - every top-K slow rid resolves LIVE against the daemon's tail-sampled
#     trace store via parcflctl traces get, to a Perfetto trace whose serve
#     span duration equals the total_ns the report recorded for it;
#   - the parcfl_trace_* metrics are live and the store respects its bound;
#   - the parcfl_slo_* gauges and /debug/slo burn-rate snapshot are live and
#     nonzero after the load;
#   - the shutdown trace contains the lifecycle lane of a chosen request
#     whose serve span matches the timings breakdown its reply carried;
#   - injected overload fires the diagnostic-bundle watchdog, and the bundle
#     validates end to end: manifest sha256s match, an OpenMetrics-negotiated
#     /metrics scrape carries exemplars naming a request whose "req <seq>"
#     lane exists in the bundled trace, while the default (v0.0.4) scrape
#     body stays exemplar-free and parseable by classic Prometheus.
#
# On any failure while a daemon is still up, the trap captures a diagnostic
# bundle into $WORK/failure-bundle.tar.gz for the CI artifact upload.
#
# Usage: scripts/soak_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
BENCH="${SMOKE_BENCH:-_200_check}"
SCALE="${SMOKE_SCALE:-0.002}"
RATE="${SOAK_RATE:-150}"
DUR="${SOAK_DURATION:-3s}"
cd "$(dirname "$0")/.."

go build -o "$WORK/parcfld" ./cmd/parcfld
go build -o "$WORK/parcflq" ./cmd/parcflq
go build -o "$WORK/parcflload" ./cmd/parcflload
go build -o "$WORK/parcflctl" ./cmd/parcflctl

DPID=""
cleanup() {
  status=$?
  # Black-box recovery: a failing smoke with a live daemon captures the
  # daemon's diagnostic bundle so the CI artifact holds the evidence.
  if [ "$status" -ne 0 ] && [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null && [ -n "${ADDR:-}" ]; then
    echo "smoke failed (exit $status): capturing diagnostic bundle from $ADDR"
    # Every retained request trace rides along with the bundle: the tail
    # the store kept is exactly the evidence a failed smoke needs.
    curl -sf "http://$ADDR/debug/traces?limit=0" -o "$WORK/failure-traces.json" 2>/dev/null || true
    curl -sf "http://$ADDR/debug/bundle?trigger=1&reason=smoke-failure" >/dev/null 2>&1 || true
    FID=$(curl -sf "http://$ADDR/debug/bundle" 2>/dev/null \
      | python3 -c 'import json,sys; bs=json.load(sys.stdin)["bundles"]; print(bs[-1]["id"] if bs else "")' 2>/dev/null || true)
    if [ -n "$FID" ]; then
      curl -sf "http://$ADDR/debug/bundle/$FID" -o "$WORK/failure-bundle.tar.gz" 2>/dev/null || true
      echo "failure bundle saved to $WORK/failure-bundle.tar.gz"
    fi
  fi
  if [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null; then
    kill -TERM "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_daemon() { # $1 = log file, rest = extra flags
  local log="$1"; shift
  rm -f "$WORK/addr.txt"
  # Every daemon runs with the bundle watchdog mounted (manual trigger
  # only, unless a phase passes rule flags) so the failure trap above can
  # always capture a bundle.
  "$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" \
    -addr localhost:0 -addr-file "$WORK/addr.txt" \
    -bundle-dir "$WORK/bundles" \
    -snapshot "$WORK/warm.pag" "$@" >"$WORK/$log" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -s "$WORK/addr.txt" ] && break
    sleep 0.1
  done
  [ -s "$WORK/addr.txt" ] || { echo "FAIL: daemon never bound"; cat "$WORK/$log"; exit 1; }
  ADDR=$(cat "$WORK/addr.txt")
}

stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID"
  DPID=""
}

echo "== prime a snapshot =="
start_daemon cold.log
"$WORK/parcflq" -addr "$ADDR" -list 4 >/dev/null
"$WORK/parcflq" -addr "$ADDR" -save ""
stop_daemon
[ -s "$WORK/warm.pag" ] || { echo "FAIL: no snapshot to warm-start from"; exit 1; }

echo "== warm start with tracing, soak =="
# -trace-sample 1 retains every request (capacity 2048 > everything the
# soak sends), so resolving each top-K slow rid below is deterministic;
# policy-based tail retention (anomaly window, outcome) is exercised by the
# anomaly phase, and the sampling/slow policies by the unit tests.
start_daemon warm.log -trace-out "$WORK/trace.json" \
  -trace-store 2048 -trace-sample 1
grep -q "warm start" "$WORK/warm.log" || { echo "FAIL: daemon did not warm-start"; cat "$WORK/warm.log"; exit 1; }

"$WORK/parcflload" -addr "$ADDR" -rate "$RATE" -duration "$DUR" \
  -json "$WORK/soak.json" | tee "$WORK/load.txt"

python3 - "$WORK/soak.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "parcfl-soak/v1", r["schema"]
assert r["sent"] > 0 and r["succeeded"] > 0, f"soak sent nothing: {r}"
assert r["errored"] == 0, f"{r['errored']} error-class responses under soak"
assert 0 < r["p50_ns"] <= r["p99_ns"] <= r["p999_ns"], "latency percentiles out of order"
ph = r["phases"]
shares = ph["admit_share"] + ph["queue_share"] + ph["solve_share"] + ph["fanout_share"]
assert abs(shares - 1) < 0.01, f"phase shares sum to {shares}"
slow = r.get("slowest") or []
assert 0 < len(slow) <= 5, f"slowest list has {len(slow)} entries"
assert all(s["rid"].startswith("load-") for s in slow), slow
assert all(slow[i]["latency_ns"] >= slow[i+1]["latency_ns"] for i in range(len(slow)-1)), \
    "slowest list not ordered"
assert slow[0]["timings"]["seq"] > 0, slow[0]
print(f"soak OK: {r['succeeded']}/{r['sent']} ok at {r['qps']:.0f} qps, "
      f"p99 {r['p99_ns']/1e6:.2f}ms, solve share {ph['solve_share']:.0%}, "
      f"slowest {slow[0]['rid']} at {slow[0]['latency_ns']/1e6:.2f}ms")
EOF

# One chosen request whose lifecycle we follow into the trace.
CHOSEN_VAR=$("$WORK/parcflq" -addr "$ADDR" -list 1 | head -n1)
"$WORK/parcflq" -addr "$ADDR" -request-id smoke-chosen-1 -json \
  "$CHOSEN_VAR" >"$WORK/chosen.json"

# SLO layer: gauges live and nonzero after load, burn-rate snapshot parses.
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
for series in parcfl_slo_requests_total parcfl_slo_availability \
  parcfl_slo_avail_burn_rate parcfl_slo_latency_attainment parcfl_slo_latency_burn_rate; do
  grep -q "^$series" "$WORK/metrics.txt" \
    || { echo "FAIL: /metrics missing $series"; exit 1; }
done
curl -sf "http://$ADDR/debug/slo" >"$WORK/slo.json"
python3 - "$WORK/metrics.txt" "$WORK/slo.json" <<'EOF'
import json, sys
ok = 0
for line in open(sys.argv[1]):
    if line.startswith('parcfl_slo_requests_total{class="success"}'):
        ok = int(float(line.split()[-1]))
assert ok > 0, "parcfl_slo_requests_total success count is zero after load"
slo = json.load(open(sys.argv[2]))
assert slo["schema"] == "parcfl-slo/v1", slo["schema"]
w = slo["windows"][0]
assert w["total"] > 0 and w["availability"] > 0, f"dead SLO window: {w}"
print(f"slo OK: {ok} successes, availability {w['availability']:.4f}, "
      f"avail burn {w['avail_burn_rate']:.2f} over {w['window_sec']}s")
EOF

# Live trace store: every top-K slow rid from the soak report must resolve
# against the running daemon to a Perfetto trace whose serve span equals the
# total_ns the report recorded — the "follow one slow request" loop, closed
# while the daemon is still serving.
"$WORK/parcflctl" -addr "$ADDR" traces ls -limit 5 | tee "$WORK/traces-ls.txt"
SLOW_RIDS=$(python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))
print("\n".join(s["rid"] for s in r.get("slowest") or []))' "$WORK/soak.json")
[ -n "$SLOW_RIDS" ] || { echo "FAIL: soak report lists no slow rids"; exit 1; }
for RID in $SLOW_RIDS; do
  "$WORK/parcflctl" -addr "$ADDR" traces get "$RID" -o "$WORK/slow-$RID.json" >/dev/null \
    || { echo "FAIL: slow rid $RID did not resolve at /debug/traces/"; exit 1; }
  python3 - "$WORK/slow-$RID.json" "$WORK/soak.json" "$RID" <<'EOF'
import json, sys
trace, rep, rid = json.load(open(sys.argv[1])), json.load(open(sys.argv[2])), sys.argv[3]
want = next(s for s in rep["slowest"] if s["rid"] == rid)
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
serve = next(e for e in spans if e["name"] == "serve")
assert serve["args"]["rid"] == rid, (serve["args"], rid)
assert serve["args"]["outcome_name"] == "success", serve["args"]
# serve dur is us from the same server stamps the report's timings carry.
total_ns = want["timings"]["total_ns"]
assert abs(serve["dur"] * 1e3 - total_ns) < 2e3, (serve["dur"], total_ns)
names = {e["name"] for e in spans}
assert {"admit", "queue_wait"} <= names, names
print(f"slow rid {rid} resolved live: serve {serve['dur']:.0f}us == "
      f"report {total_ns/1e3:.0f}us, policy {serve['args']['policy']}")
EOF
done

# Trace-store metrics: the parcfl_trace_* series are live and the retained
# set respects the configured bound.
for series in parcfl_trace_observed_total parcfl_trace_retained_total \
  parcfl_trace_retained parcfl_trace_capacity; do
  grep -q "^$series" "$WORK/metrics.txt" \
    || { echo "FAIL: /metrics missing $series"; exit 1; }
done
curl -sf "http://$ADDR/debug/traces?limit=1" >"$WORK/traces-head.json"
python3 - "$WORK/traces-head.json" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))
assert p["schema"] == "parcfl-traces/v1", p["schema"]
st = p["store"]
assert 0 < st["retained"] <= st["capacity"], st
assert st["observed"] >= st["retained"], st
print(f"trace store OK: {st['retained']}/{st['capacity']} retained "
      f"of {st['observed']} observed")
EOF

stop_daemon
grep -q "trace written to" "$WORK/warm.log" || { echo "FAIL: no trace on shutdown"; cat "$WORK/warm.log"; exit 1; }

# The chosen request's lane: a "req <seq>" thread on the requests process
# whose serve span duration equals the timings total the reply reported,
# with its admit and queue_wait phases contained within it.
python3 - "$WORK/chosen.json" "$WORK/trace.json" <<'EOF'
import json, sys
reply = json.load(open(sys.argv[1]))
tm = reply["results"][0]["timings"]
seq, total_ns = tm["seq"], tm["total_ns"]
trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
lanes = {(e["pid"], e["tid"]): e["args"]["name"]
         for e in events if e.get("name") == "thread_name"}
req_pid = next(p for (p, t), n in lanes.items() if n == f"req {seq}")
lane = [e for e in events
        if e.get("ph") == "X" and e["pid"] == req_pid and e["tid"] == seq]
byname = {e["name"]: e for e in lane}
assert {"admit", "queue_wait", "serve"} <= set(byname), sorted(byname)
serve = byname["serve"]
assert serve["args"]["req"] == seq and serve["args"]["outcome"] == 0, serve
# serve dur is exported in us from the same stamps as total_ns.
assert abs(serve["dur"] * 1e3 - total_ns) < 2e3, (serve["dur"], total_ns)
phase_sum = byname["admit"].get("dur", 0) + byname["queue_wait"].get("dur", 0)
assert phase_sum <= serve["dur"] * 1.01, (phase_sum, serve["dur"])
batches = [e for e in events if e.get("name") == "batch_window"
           and e["args"].get("batch") == tm["batch"]]
assert batches, f"no batch_window span for batch {tm['batch']}"
print(f"trace OK: req {seq} lane complete, serve {serve['dur']:.0f}us == "
      f"timings {total_ns/1e3:.0f}us, batch {tm['batch']} anatomy present")
EOF

echo "== anomaly phase: injected overload fires the bundle watchdog =="
# A wide batch window plus a shallow queue under open-loop load keeps
# requests waiting: the queue high-water and windowed-p99 rules both have
# something to fire on within one 1s evaluation tick.
rm -rf "$WORK/bundles"
# -bundle-anomaly-window 30s: any watchdog firing holds the trace store's
# retain-everything window open across the whole phase, so the post-soak
# chosen request below is deterministically retained with policy "anomaly".
start_daemon anomaly.log -batch-window 50ms -queue 8 \
  -bundle-queue-high 1 -bundle-p99 1ms -bundle-cooldown 1s \
  -bundle-cpu-profile 50ms -bundle-retain 4 -bundle-anomaly-window 30s

"$WORK/parcflload" -addr "$ADDR" -rate 300 -duration 2500ms -retry=false \
  -bundle-on-fail "$WORK/load-bundles" -json "$WORK/soak-anomaly.json" \
  >"$WORK/load-anomaly.txt" || true

# An auto-fired bundle (queue or p99 rule, not manual) must appear.
AUTO=""
for _ in $(seq 50); do
  AUTO=$(curl -sf "http://$ADDR/debug/bundle" | python3 -c '
import json, sys
bs = json.load(sys.stdin)["bundles"]
auto = [b for b in bs if b["trigger"] in ("queue", "p99", "burn")]
print(auto[-1]["id"] if auto else "")')
  [ -n "$AUTO" ] && break
  sleep 0.2
done
[ -n "$AUTO" ] || { echo "FAIL: watchdog never fired under injected overload"; \
  curl -sf "http://$ADDR/debug/bundle" || true; cat "$WORK/anomaly.log"; exit 1; }
echo "watchdog fired: auto bundle $AUTO"

# One post-soak request whose exemplar we follow into a fresh bundle. The
# soak has drained, so this request's exemplar is the newest in its bucket
# and its span is the newest in the ring.
CHOSEN_VAR=$("$WORK/parcflq" -addr "$ADDR" -list 1 | head -n1)
"$WORK/parcflq" -addr "$ADDR" -request-id smoke-anomaly-7 -json \
  "$CHOSEN_VAR" >"$WORK/anomaly-chosen.json"
# Exemplars ride only the negotiated OpenMetrics body; the default scrape
# stays classic v0.0.4 (which cannot legally carry them).
curl -sf -H 'Accept: application/openmetrics-text' \
  "http://$ADDR/metrics" >"$WORK/metrics-anomaly.txt"
curl -sf "http://$ADDR/metrics" >"$WORK/metrics-plain.txt"
grep -q ' # {' "$WORK/metrics-plain.txt" \
  && { echo "FAIL: default /metrics body carries exemplar syntax"; exit 1; }
grep -q '^# EOF' "$WORK/metrics-anomaly.txt" \
  || { echo "FAIL: OpenMetrics body missing # EOF terminator"; exit 1; }
curl -sf "http://$ADDR/debug/statusz" >"$WORK/statusz.json"

# The watchdog firing opened the trace store's anomaly window, so the chosen
# request — a healthy success that neither sampling nor the slow threshold
# would have to keep — is retained with policy "anomaly" and resolves live.
"$WORK/parcflctl" -addr "$ADDR" traces get smoke-anomaly-7 \
  -o "$WORK/anomaly-trace.json" >/dev/null \
  || { echo "FAIL: smoke-anomaly-7 not retained during anomaly window"; exit 1; }
python3 - "$WORK/anomaly-trace.json" "$WORK/anomaly-chosen.json" <<'EOF'
import json, sys
trace, reply = json.load(open(sys.argv[1])), json.load(open(sys.argv[2]))
serve = next(e for e in trace["traceEvents"]
             if e.get("ph") == "X" and e["name"] == "serve")
assert serve["args"]["rid"] == "smoke-anomaly-7", serve["args"]
assert serve["args"]["policy"] == "anomaly", serve["args"]
total_ns = reply["results"][0]["timings"]["total_ns"]
assert abs(serve["dur"] * 1e3 - total_ns) < 2e3, (serve["dur"], total_ns)
assert serve["args"]["trace_id"] == reply["trace_id"], \
    (serve["args"]["trace_id"], reply.get("trace_id"))
print(f"anomaly retention OK: smoke-anomaly-7 kept by window, "
      f"trace_id {reply['trace_id'][:8]}.., serve {serve['dur']:.0f}us")
EOF

sleep 1.2  # clear the manual rule's cooldown (parcflload may have used it)
MANUAL=$(curl -sf "http://$ADDR/debug/bundle?trigger=1&reason=smoke-validate" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf "http://$ADDR/debug/bundle/$MANUAL" -o "$WORK/manual-bundle.tar.gz"

python3 - "$WORK/manual-bundle.tar.gz" "$WORK/metrics-anomaly.txt" \
  "$WORK/anomaly-chosen.json" "$WORK/statusz.json" <<'EOF'
import hashlib, json, re, sys, tarfile

# 1. Manifest validates: schema, every artifact present with matching
#    sha256 and size, bundle ID consistent with the artifact digests.
tf = tarfile.open(sys.argv[1], "r:gz")
blobs = {m.name: tf.extractfile(m).read() for m in tf.getmembers()}
man = json.loads(blobs.pop("manifest.json"))
assert man["schema"] == "parcfl-bundle/v1", man["schema"]
idh = hashlib.sha256()
assert len(blobs) == len(man["artifacts"]), (sorted(blobs), man["artifacts"])
for art in man["artifacts"]:
    data = blobs[art["name"]]
    digest = hashlib.sha256(data).hexdigest()
    assert digest == art["sha256"], f"{art['name']}: sha256 mismatch"
    assert len(data) == art["size"], f"{art['name']}: size mismatch"
    idh.update(bytes.fromhex(digest))
assert idh.hexdigest() == man["id"], "bundle ID does not match artifact digests"
need = {"heap.pprof", "goroutines.txt", "trace.json", "timeseries.json",
        "slo.json", "obs.json", "statusz.json", "exemplars.json",
        "server-stats.json", "config.json", "cpu.pprof", "traces.json"}
assert need <= set(blobs), f"missing artifacts: {need - set(blobs)}"

# 1b. The bundled retained-trace dump names the anomaly-window request: the
#     bundle carries whole request traces, not just the raw span ring.
tdump = json.loads(blobs["traces.json"])
assert tdump["schema"] == "parcfl-traces/v1", tdump["schema"]
trids = {t["rid"] for t in tdump["traces"]}
assert "smoke-anomaly-7" in trids, f"smoke-anomaly-7 not in bundled traces ({len(trids)} rids)"

# 2. /metrics carries an OpenMetrics exemplar naming the chosen request,
#    on a latency bucket, with its server-side seq.
reply = json.load(open(sys.argv[3]))
assert reply["request_id"] == "smoke-anomaly-7", reply["request_id"]
seq = reply["results"][0]["timings"]["seq"]
ex_re = re.compile(
    r'^parcfl_server_latency_ns_bucket\{le="[^"]+"\} \d+ '
    r'# \{request_id="smoke-anomaly-7",seq="(\d+)"\} \d+ \d+\.\d+$')
found = None
for line in open(sys.argv[2]):
    m = ex_re.match(line.strip())
    if m:
        found = int(m.group(1))
assert found == seq, f"exemplar seq {found} != reply seq {seq}"

# 3. The exemplared request's span lane exists in the bundled trace: the
#    bundle and the scrape describe the same moment.
trace = json.loads(blobs["trace.json"])
lanes = {e["args"]["name"] for e in trace["traceEvents"]
         if e.get("name") == "thread_name"}
assert f"req {seq}" in lanes, f"req {seq} lane not in bundled trace ({len(lanes)} lanes)"
exdump = json.loads(blobs["exemplars.json"])
rids = {e["rid"] for exs in exdump["hists"].values() for e in exs}
assert "smoke-anomaly-7" in rids, rids

# 4. Build identity: statusz and the build_info gauge agree.
statusz = json.load(open(sys.argv[4]))
assert statusz["schema"] == "parcfl-statusz/v1", statusz["schema"]
go_ver = statusz["build"]["go_version"]
assert any(line.startswith("parcfl_build_info{") and go_ver in line
           for line in open(sys.argv[2])), "parcfl_build_info missing or inconsistent"

print(f"bundle OK: {len(man['artifacts'])} artifacts verified, id {man['id'][:12]}, "
      f"exemplar smoke-anomaly-7 -> seq {seq} -> trace lane present")
EOF

# The load client's -bundle-on-fail must have fetched a bundle client-side
# (the overload injection guarantees anomalies).
ls "$WORK"/load-bundles/bundle-*.tar.gz >/dev/null 2>&1 \
  || { echo "FAIL: parcflload -bundle-on-fail saved nothing"; cat "$WORK/load-anomaly.txt"; exit 1; }

stop_daemon

echo "soak smoke OK (rate $RATE for $DUR, workdir $WORK)"
