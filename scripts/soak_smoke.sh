#!/usr/bin/env bash
# Soak smoke test: boot parcfld cold, snapshot it, restart warm with request
# tracing on, soak it with open-loop load (parcflload), and assert:
#   - the soak report is well-formed parcfl-soak/v1 with zero error-class
#     responses;
#   - the parcfl_slo_* gauges and /debug/slo burn-rate snapshot are live and
#     nonzero after the load;
#   - the shutdown trace contains the lifecycle lane of a chosen request
#     whose serve span matches the timings breakdown its reply carried.
#
# Usage: scripts/soak_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
BENCH="${SMOKE_BENCH:-_200_check}"
SCALE="${SMOKE_SCALE:-0.002}"
RATE="${SOAK_RATE:-150}"
DUR="${SOAK_DURATION:-3s}"
cd "$(dirname "$0")/.."

go build -o "$WORK/parcfld" ./cmd/parcfld
go build -o "$WORK/parcflq" ./cmd/parcflq
go build -o "$WORK/parcflload" ./cmd/parcflload

DPID=""
cleanup() {
  if [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null; then
    kill -TERM "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_daemon() { # $1 = log file, rest = extra flags
  local log="$1"; shift
  rm -f "$WORK/addr.txt"
  "$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" \
    -addr localhost:0 -addr-file "$WORK/addr.txt" \
    -snapshot "$WORK/warm.pag" "$@" >"$WORK/$log" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -s "$WORK/addr.txt" ] && break
    sleep 0.1
  done
  [ -s "$WORK/addr.txt" ] || { echo "FAIL: daemon never bound"; cat "$WORK/$log"; exit 1; }
  ADDR=$(cat "$WORK/addr.txt")
}

stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID"
  DPID=""
}

echo "== prime a snapshot =="
start_daemon cold.log
"$WORK/parcflq" -addr "$ADDR" -list 4 >/dev/null
"$WORK/parcflq" -addr "$ADDR" -save ""
stop_daemon
[ -s "$WORK/warm.pag" ] || { echo "FAIL: no snapshot to warm-start from"; exit 1; }

echo "== warm start with tracing, soak =="
start_daemon warm.log -trace-out "$WORK/trace.json"
grep -q "warm start" "$WORK/warm.log" || { echo "FAIL: daemon did not warm-start"; cat "$WORK/warm.log"; exit 1; }

"$WORK/parcflload" -addr "$ADDR" -rate "$RATE" -duration "$DUR" \
  -json "$WORK/soak.json" | tee "$WORK/load.txt"

python3 - "$WORK/soak.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "parcfl-soak/v1", r["schema"]
assert r["sent"] > 0 and r["succeeded"] > 0, f"soak sent nothing: {r}"
assert r["errored"] == 0, f"{r['errored']} error-class responses under soak"
assert 0 < r["p50_ns"] <= r["p99_ns"] <= r["p999_ns"], "latency percentiles out of order"
ph = r["phases"]
shares = ph["admit_share"] + ph["queue_share"] + ph["solve_share"] + ph["fanout_share"]
assert abs(shares - 1) < 0.01, f"phase shares sum to {shares}"
print(f"soak OK: {r['succeeded']}/{r['sent']} ok at {r['qps']:.0f} qps, "
      f"p99 {r['p99_ns']/1e6:.2f}ms, solve share {ph['solve_share']:.0%}")
EOF

# One chosen request whose lifecycle we follow into the trace.
CHOSEN_VAR=$("$WORK/parcflq" -addr "$ADDR" -list 1 | head -n1)
"$WORK/parcflq" -addr "$ADDR" -request-id smoke-chosen-1 -json \
  "$CHOSEN_VAR" >"$WORK/chosen.json"

# SLO layer: gauges live and nonzero after load, burn-rate snapshot parses.
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
for series in parcfl_slo_requests_total parcfl_slo_availability \
  parcfl_slo_avail_burn_rate parcfl_slo_latency_attainment parcfl_slo_latency_burn_rate; do
  grep -q "^$series" "$WORK/metrics.txt" \
    || { echo "FAIL: /metrics missing $series"; exit 1; }
done
curl -sf "http://$ADDR/debug/slo" >"$WORK/slo.json"
python3 - "$WORK/metrics.txt" "$WORK/slo.json" <<'EOF'
import json, sys
ok = 0
for line in open(sys.argv[1]):
    if line.startswith('parcfl_slo_requests_total{class="success"}'):
        ok = int(float(line.split()[-1]))
assert ok > 0, "parcfl_slo_requests_total success count is zero after load"
slo = json.load(open(sys.argv[2]))
assert slo["schema"] == "parcfl-slo/v1", slo["schema"]
w = slo["windows"][0]
assert w["total"] > 0 and w["availability"] > 0, f"dead SLO window: {w}"
print(f"slo OK: {ok} successes, availability {w['availability']:.4f}, "
      f"avail burn {w['avail_burn_rate']:.2f} over {w['window_sec']}s")
EOF

stop_daemon
grep -q "trace written to" "$WORK/warm.log" || { echo "FAIL: no trace on shutdown"; cat "$WORK/warm.log"; exit 1; }

# The chosen request's lane: a "req <seq>" thread on the requests process
# whose serve span duration equals the timings total the reply reported,
# with its admit and queue_wait phases contained within it.
python3 - "$WORK/chosen.json" "$WORK/trace.json" <<'EOF'
import json, sys
reply = json.load(open(sys.argv[1]))
tm = reply["results"][0]["timings"]
seq, total_ns = tm["seq"], tm["total_ns"]
trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
lanes = {(e["pid"], e["tid"]): e["args"]["name"]
         for e in events if e.get("name") == "thread_name"}
req_pid = next(p for (p, t), n in lanes.items() if n == f"req {seq}")
lane = [e for e in events
        if e.get("ph") == "X" and e["pid"] == req_pid and e["tid"] == seq]
byname = {e["name"]: e for e in lane}
assert {"admit", "queue_wait", "serve"} <= set(byname), sorted(byname)
serve = byname["serve"]
assert serve["args"]["req"] == seq and serve["args"]["outcome"] == 0, serve
# serve dur is exported in us from the same stamps as total_ns.
assert abs(serve["dur"] * 1e3 - total_ns) < 2e3, (serve["dur"], total_ns)
phase_sum = byname["admit"].get("dur", 0) + byname["queue_wait"].get("dur", 0)
assert phase_sum <= serve["dur"] * 1.01, (phase_sum, serve["dur"])
batches = [e for e in events if e.get("name") == "batch_window"
           and e["args"].get("batch") == tm["batch"]]
assert batches, f"no batch_window span for batch {tm['batch']}"
print(f"trace OK: req {seq} lane complete, serve {serve['dur']:.0f}us == "
      f"timings {total_ns/1e3:.0f}us, batch {tm['batch']} anatomy present")
EOF

echo "soak smoke OK (rate $RATE for $DUR, workdir $WORK)"
