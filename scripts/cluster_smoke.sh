#!/usr/bin/env bash
# Cluster smoke test: partition a program into 2 component-aware shards,
# boot both shard replicas and a parcflrouter in front of them, and assert
#   1. mixed queries through the router return byte-identical normalized
#      results to a single unsharded daemon over the same program,
#   2. each shard rejects foreign variables with a typed 421 redirect,
#   3. killing one shard degrades gracefully: owned-elsewhere queries get
#      503 + Retry-After, allow_partial requests get 200 with partial=true
#      and the dead variables listed under "missing",
#   4. the router's /metrics rollup exposes the parcfl_cluster_* series.
#
# On any failure while a shard is still up, the trap captures a diagnostic
# bundle into $WORK/failure-bundle.tar.gz for the CI artifact upload.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
BENCH="${SMOKE_BENCH:-_200_check}"
SCALE="${SMOKE_SCALE:-0.002}"
NVARS="${SMOKE_NVARS:-8}"
cd "$(dirname "$0")/.."

go build -o "$WORK/parcfld" ./cmd/parcfld
go build -o "$WORK/parcflrouter" ./cmd/parcflrouter
go build -o "$WORK/parcflq" ./cmd/parcflq
go build -o "$WORK/parcflctl" ./cmd/parcflctl

PIDS=()
cleanup() {
  status=$?
  if [ "$status" -ne 0 ] && [ -n "${S0ADDR:-}" ] && curl -sf "http://$S0ADDR/v1/stats" >/dev/null 2>&1; then
    echo "cluster smoke failed (exit $status): capturing diagnostic bundle from shard 0 at $S0ADDR"
    curl -sf "http://$S0ADDR/debug/bundle?trigger=1&reason=cluster-smoke-failure" >/dev/null 2>&1 || true
    FID=$(curl -sf "http://$S0ADDR/debug/bundle" 2>/dev/null \
      | python3 -c 'import json,sys; bs=json.load(sys.stdin)["bundles"]; print(bs[-1]["id"] if bs else "")' 2>/dev/null || true)
    if [ -n "$FID" ]; then
      curl -sf "http://$S0ADDR/debug/bundle/$FID" -o "$WORK/failure-bundle.tar.gz" 2>/dev/null || true
      echo "failure bundle saved to $WORK/failure-bundle.tar.gz"
    fi
  fi
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null && { kill -TERM "$pid" 2>/dev/null || true; }
  done
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_addr() { # $1 = addr file, $2 = log file for the failure message
  for _ in $(seq 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "FAIL: $2 never bound"; cat "$WORK/$2"; exit 1
}

# Normalization strips run-specific telemetry (request/trace ids, step
# counts, phase timings); the points-to sets, context counts and abort
# flags must be byte-identical between the cluster and the single daemon.
normalize() { # $1 = in, $2 = out
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
r.pop("request_id", None)
r.pop("trace_id", None)
for res in r["results"]:
    res.pop("steps", None)
    res.pop("timings", None)
json.dump(r, open(sys.argv[2], "w"), indent=1, sort_keys=True)
EOF
}

echo "== shard plan =="
"$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" -plan "$WORK/plan.bin" -write-plan 2
[ -s "$WORK/plan.bin" ] || { echo "FAIL: -write-plan wrote nothing"; exit 1; }

echo "== unsharded baseline =="
rm -f "$WORK/base-addr.txt"
"$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" \
  -addr localhost:0 -addr-file "$WORK/base-addr.txt" >"$WORK/base.log" 2>&1 &
PIDS+=($!)
wait_addr "$WORK/base-addr.txt" base.log
BASEADDR=$(cat "$WORK/base-addr.txt")

mapfile -t VARS < <("$WORK/parcflq" -addr "$BASEADDR" -list "$NVARS" | head -n "$NVARS")
[ "${#VARS[@]}" -ge 2 ] || { echo "FAIL: need >=2 query vars"; exit 1; }
"$WORK/parcflq" -addr "$BASEADDR" -json "${VARS[@]}" >"$WORK/base.json"

echo "== 2 shards + router =="
rm -f "$WORK/s0-addr.txt" "$WORK/s1-addr.txt" "$WORK/router-addr.txt"
"$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" -plan "$WORK/plan.bin" -shard 0/2 \
  -addr localhost:0 -addr-file "$WORK/s0-addr.txt" -bundle-dir "$WORK/bundles" >"$WORK/s0.log" 2>&1 &
PIDS+=($!)
"$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" -plan "$WORK/plan.bin" -shard 1/2 \
  -addr localhost:0 -addr-file "$WORK/s1-addr.txt" >"$WORK/s1.log" 2>&1 &
S1PID=$!
PIDS+=("$S1PID")
wait_addr "$WORK/s0-addr.txt" s0.log
wait_addr "$WORK/s1-addr.txt" s1.log
S0ADDR=$(cat "$WORK/s0-addr.txt")
S1ADDR=$(cat "$WORK/s1-addr.txt")

"$WORK/parcflrouter" -plan "$WORK/plan.bin" -shards "$S0ADDR,$S1ADDR" \
  -addr localhost:0 -addr-file "$WORK/router-addr.txt" \
  -health-interval 500ms >"$WORK/router.log" 2>&1 &
PIDS+=($!)
wait_addr "$WORK/router-addr.txt" router.log
RADDR=$(cat "$WORK/router-addr.txt")

# Shards answer their own variables and 421-redirect foreign ones; sort the
# census into owners by asking shard 0 directly.
LIVE_VAR=""  # owned by shard 0 (stays up)
DEAD_VAR=""  # owned by shard 1 (killed below)
for v in "${VARS[@]}"; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$S0ADDR/v1/query" \
    -H 'Content-Type: application/json' -d "{\"vars\":[\"$v\"]}")
  case "$code" in
    200) [ -n "$LIVE_VAR" ] || LIVE_VAR="$v" ;;
    421) [ -n "$DEAD_VAR" ] || DEAD_VAR="$v" ;;
    *) echo "FAIL: shard 0 returned $code for $v (want 200 or 421)"; exit 1 ;;
  esac
done
[ -n "$LIVE_VAR" ] && [ -n "$DEAD_VAR" ] \
  || { echo "FAIL: census does not span both shards (live=$LIVE_VAR dead=$DEAD_VAR)"; exit 1; }
echo "shard split OK: $LIVE_VAR on shard 0, $DEAD_VAR on shard 1"

# Mixed queries through the router must match the unsharded daemon exactly.
"$WORK/parcflq" -addr "$RADDR" "${VARS[0]}"
"$WORK/parcflq" -addr "$RADDR" -json "${VARS[@]}" >"$WORK/cluster.json"
normalize "$WORK/base.json" "$WORK/base.norm.json"
normalize "$WORK/cluster.json" "$WORK/cluster.norm.json"
if ! cmp -s "$WORK/base.norm.json" "$WORK/cluster.norm.json"; then
  echo "FAIL: cluster results differ from unsharded daemon"
  diff "$WORK/base.norm.json" "$WORK/cluster.norm.json" || true
  exit 1
fi
echo "equivalence OK: ${#VARS[@]} vars byte-identical through 2-shard cluster"

# Ops surface: cluster rollup over HTTP and via parcflctl, plus /metrics.
"$WORK/parcflctl" -addr "$RADDR" cluster ls | sed -n 1,4p
"$WORK/parcflctl" -addr "$RADDR" cluster slo >/dev/null
curl -sf "http://$RADDR/metrics" >"$WORK/router-metrics.txt"
for series in parcfl_cluster_requests_total parcfl_cluster_shards_up \
  parcfl_cluster_shard_up parcfl_cluster_shard_requests_total; do
  grep -q "^$series\|^# HELP $series" "$WORK/router-metrics.txt" \
    || { echo "FAIL: router /metrics missing $series"; exit 1; }
done
grep -q 'parcfl_cluster_shards_up 2' "$WORK/router-metrics.txt" \
  || { echo "FAIL: router does not report 2 shards up"; exit 1; }

echo "== degradation: kill shard 1 =="
kill -KILL "$S1PID" 2>/dev/null || true
wait "$S1PID" 2>/dev/null || true

# Queries owned by the live shard keep working.
"$WORK/parcflq" -addr "$RADDR" "$LIVE_VAR" >/dev/null

# All-or-nothing queries touching the dead shard: 503 with a Retry-After.
curl -s -D "$WORK/dead-headers.txt" -o "$WORK/dead-body.json" \
  -X POST "http://$RADDR/v1/query" -H 'Content-Type: application/json' \
  -d "{\"vars\":[\"$DEAD_VAR\"]}"
grep -q '^HTTP/.* 503' "$WORK/dead-headers.txt" \
  || { echo "FAIL: dead-shard query did not 503"; cat "$WORK/dead-headers.txt"; exit 1; }
grep -qi '^Retry-After:' "$WORK/dead-headers.txt" \
  || { echo "FAIL: 503 carries no Retry-After"; cat "$WORK/dead-headers.txt"; exit 1; }

# allow_partial: the live half answers, the dead half is listed as missing.
curl -sf -X POST "http://$RADDR/v1/query" -H 'Content-Type: application/json' \
  -d "{\"vars\":[\"$LIVE_VAR\",\"$DEAD_VAR\"],\"allow_partial\":true}" >"$WORK/partial.json"
python3 - "$WORK/partial.json" "$LIVE_VAR" "$DEAD_VAR" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
live, dead = sys.argv[2], sys.argv[3]
assert r.get("partial"), f"reply not flagged partial: {r}"
assert dead in r.get("missing", []), f"{dead} not listed missing: {r}"
res = {x["var"]: x for x in r["results"]}
assert not res[live].get("failed"), f"live var failed: {res[live]}"
assert res[dead].get("failed"), f"dead var not marked failed: {res[dead]}"
print(f"partial OK: {live} answered, {dead} missing")
EOF

curl -sf "http://$RADDR/metrics" >"$WORK/router-metrics-degraded.txt"
grep -q '^parcfl_cluster_shards_up 1$' "$WORK/router-metrics-degraded.txt" \
  || { echo "FAIL: router still reports dead shard as up"; grep shards_up "$WORK/router-metrics-degraded.txt"; exit 1; }

echo "cluster smoke OK (plan -> 2 shards + router -> equivalence -> degradation, workdir $WORK)"
