#!/usr/bin/env bash
# Serve smoke test: boot parcfld on a random port, exercise the full client
# path (single query, batch query, snapshot save), restart warm from the
# snapshot, and assert the warm daemon returns identical points-to results
# and exposes the parcfl_server_* metric series.
#
# On any failure while a daemon is still up, the trap captures a diagnostic
# bundle into $WORK/failure-bundle.tar.gz for the CI artifact upload.
#
# Usage: scripts/serve_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
BENCH="${SMOKE_BENCH:-_200_check}"
SCALE="${SMOKE_SCALE:-0.002}"
NVARS="${SMOKE_NVARS:-8}"
cd "$(dirname "$0")/.."

go build -o "$WORK/parcfld" ./cmd/parcfld
go build -o "$WORK/parcflq" ./cmd/parcflq

DPID=""
cleanup() {
  status=$?
  # Black-box recovery: a failing smoke with a live daemon captures its
  # diagnostic bundle so the CI artifact holds the evidence.
  if [ "$status" -ne 0 ] && [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null && [ -n "${ADDR:-}" ]; then
    echo "smoke failed (exit $status): capturing diagnostic bundle from $ADDR"
    curl -sf "http://$ADDR/debug/traces?limit=0" -o "$WORK/failure-traces.json" 2>/dev/null || true
    curl -sf "http://$ADDR/debug/bundle?trigger=1&reason=smoke-failure" >/dev/null 2>&1 || true
    FID=$(curl -sf "http://$ADDR/debug/bundle" 2>/dev/null \
      | python3 -c 'import json,sys; bs=json.load(sys.stdin)["bundles"]; print(bs[-1]["id"] if bs else "")' 2>/dev/null || true)
    if [ -n "$FID" ]; then
      curl -sf "http://$ADDR/debug/bundle/$FID" -o "$WORK/failure-bundle.tar.gz" 2>/dev/null || true
      echo "failure bundle saved to $WORK/failure-bundle.tar.gz"
    fi
  fi
  if [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null; then
    kill -TERM "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_daemon() { # $1 = log file
  rm -f "$WORK/addr.txt"
  "$WORK/parcfld" -bench "$BENCH" -scale "$SCALE" \
    -addr localhost:0 -addr-file "$WORK/addr.txt" \
    -bundle-dir "$WORK/bundles" \
    -snapshot "$WORK/warm.pag" >"$WORK/$1" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -s "$WORK/addr.txt" ] && break
    sleep 0.1
  done
  [ -s "$WORK/addr.txt" ] || { echo "FAIL: daemon never bound"; cat "$WORK/$1"; exit 1; }
  ADDR=$(cat "$WORK/addr.txt")
}

stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID"
  DPID=""
}

# Results comparison strips the per-query cost field: a warm start answers
# from the cache in fewer steps — the point — but the points-to sets,
# context counts and abort flags must be byte-identical.
normalize() { # $1 = in, $2 = out
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
# Run-specific telemetry differs cold vs warm; only the answers must match.
r.pop("request_id", None)
r.pop("trace_id", None)
for res in r["results"]:
    res.pop("steps", None)
    res.pop("timings", None)
json.dump(r, open(sys.argv[2], "w"), indent=1, sort_keys=True)
EOF
}

echo "== cold start =="
start_daemon cold.log
grep -q "cold start" "$WORK/cold.log"

mapfile -t VARS < <("$WORK/parcflq" -addr "$ADDR" -list "$NVARS" | head -n "$NVARS")
[ "${#VARS[@]}" -ge 2 ] || { echo "FAIL: need >=2 query vars"; exit 1; }

# Single query, then the whole set as one batch.
"$WORK/parcflq" -addr "$ADDR" "${VARS[0]}"
"$WORK/parcflq" -addr "$ADDR" -json "${VARS[@]}" >"$WORK/cold.json"
"$WORK/parcflq" -addr "$ADDR" -stats | sed -n 1,3p

# Explicit snapshot trigger via the API (the shutdown save then overwrites
# it with strictly warmer state).
"$WORK/parcflq" -addr "$ADDR" -save ""
[ -s "$WORK/warm.pag" ] || { echo "FAIL: /v1/snapshot wrote nothing"; exit 1; }

# /metrics must expose the server series.
curl -sf "http://$ADDR/metrics" >"$WORK/metrics-cold.txt"
for series in parcfl_server_requests_total parcfl_server_batches_total \
  parcfl_server_queue_depth parcfl_server_batch_size parcfl_server_latency_ns; do
  grep -q "^$series" "$WORK/metrics-cold.txt" \
    || { echo "FAIL: /metrics missing $series"; exit 1; }
done
stop_daemon
grep -q "snapshot saved" "$WORK/cold.log"

echo "== warm restart =="
start_daemon warm.log
grep -q "warm start" "$WORK/warm.log" || { echo "FAIL: daemon did not warm-start"; cat "$WORK/warm.log"; exit 1; }

"$WORK/parcflq" -addr "$ADDR" -json "${VARS[@]}" >"$WORK/warm.json"
normalize "$WORK/cold.json" "$WORK/cold.norm.json"
normalize "$WORK/warm.json" "$WORK/warm.norm.json"
if ! cmp -s "$WORK/cold.norm.json" "$WORK/warm.norm.json"; then
  echo "FAIL: warm results differ from cold"
  diff "$WORK/cold.norm.json" "$WORK/warm.norm.json" || true
  exit 1
fi

# The warm run must actually reuse state: cache hits or steps saved > 0.
"$WORK/parcflq" -addr "$ADDR" -stats -json >"$WORK/warm-stats.json"
python3 - "$WORK/warm-stats.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
reused = st["cache"]["Hits"] + st["steps_saved"]
assert reused > 0, f"warm daemon reused nothing: {st}"
print(f"warm reuse: {st['cache']['Hits']} cache hits, {st['steps_saved']} steps saved")
EOF
stop_daemon

echo "serve smoke OK (results identical cold vs warm, $((${#VARS[@]})) vars, workdir $WORK)"
