package parcfl

import (
	"parcfl/internal/cfront"
	"parcfl/internal/frontend"
)

// C-language surface: the paper notes its techniques "apply equally well to
// C" via the demand-driven C alias analysis of Zheng & Rugina; this facade
// lowers C-like programs (address-of, dereference, struct fields, malloc,
// direct calls) onto the same PAG and analysis pipeline.
type (
	// CProgram is a C translation unit with pre-resolved calls.
	CProgram = cfront.Program
	// CStruct declares a struct with pointer-sized fields.
	CStruct = cfront.Struct
	// CFunc is a C function.
	CFunc = cfront.Func
	// CLocal is a local variable or parameter.
	CLocal = cfront.Local
	// CStmt is one C statement.
	CStmt = cfront.Stmt
)

// C statement kinds.
const (
	CAssign     = cfront.CAssign
	CAddr       = cfront.CAddr
	CLoad       = cfront.CLoad
	CStore      = cfront.CStore
	CFieldLoad  = cfront.CFieldLoad
	CFieldStore = cfront.CFieldStore
	CMalloc     = cfront.CMalloc
	CCall       = cfront.CCall
)

// CAnalyzer pairs an Analyzer with the C-to-PAG slot mapping.
type CAnalyzer struct {
	*Analyzer
	tr *cfront.Translation
}

// NewCAnalyzer translates and lowers a C program.
func NewCAnalyzer(p *CProgram) (*CAnalyzer, error) {
	tr, err := cfront.Translate(p)
	if err != nil {
		return nil, err
	}
	lo, err := frontend.Lower(tr.IR)
	if err != nil {
		return nil, err
	}
	return &CAnalyzer{
		Analyzer: &Analyzer{prog: tr.IR, lo: lo},
		tr:       tr,
	}, nil
}

// CLocalNode returns the PAG node holding the value of C local l of
// function f. For address-taken locals this is the direct slot, which the
// translator keeps fresh on named writes; writes through pointers are
// visible via CReadNode-style queries on loads in the program.
func (a *CAnalyzer) CLocalNode(f, l int) NodeID {
	return a.lo.LocalNode[f][a.tr.LocalSlot[f][l]]
}

// CAddrNode returns the PAG node of the synthetic &l pointer of local l of
// function f, or false if l is not address-taken.
func (a *CAnalyzer) CAddrNode(f, l int) (NodeID, bool) {
	slot := a.tr.AddrSlot[f][l]
	if slot < 0 {
		return 0, false
	}
	return a.lo.LocalNode[f][slot], true
}
