module parcfl

go 1.22
