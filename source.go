package parcfl

import (
	"parcfl/internal/gofront"
	"parcfl/internal/mjlang"
	"parcfl/internal/summary"
)

// ParseProgram parses mini-Java source text into a Program. The language is
// a tiny Java-like notation covering exactly what the PAG models: reference
// types with fields, globals, statically dispatched functions, allocation,
// assignment, field load/store, and the collapsed array pseudo-field `arr`.
// See examples/quickstart-src for a complete program.
//
//	type Vector { elems: Object[]; }
//	func get(this: Vector): Object application {
//	    var t: Object[] = this.elems;
//	    var r: Object = t.arr;
//	    return r;
//	}
//
// Errors are positioned (line:column).
func ParseProgram(src string) (*Program, error) {
	return mjlang.Parse(src)
}

// SummaryStats reports what Summarize did.
type SummaryStats = summary.Stats

// Summarize applies the method-summarisation pre-analysis (in the spirit of
// the summary-based schemes the paper surveys): calls to trivial forwarding
// methods — wrappers whose body is a single pass-through call — are
// retargeted at the forwarded-to method, shortening every traversal through
// them without changing any points-to answer. Apply before NewAnalyzer:
//
//	stats := parcfl.Summarize(prog)
//	a, err := parcfl.NewAnalyzer(prog)
func Summarize(p *Program) SummaryStats {
	_, st := summary.Transform(p)
	return st
}

// ParseGoProgram lowers Go source text (a single file, subset documented in
// internal/gofront) onto the analysis IR, so points-to/alias/flows-to
// queries can be answered about Go code:
//
//	prog, err := parcfl.ParseGoProgram(src)
//	a, err := parcfl.NewAnalyzer(prog)
//
// The subset covers struct types, package-level vars, plain functions,
// composite-literal and new/make allocations, field and index accesses,
// append, and if/for/range control flow (flattened; the analysis is
// flow-insensitive). Unsupported constructs are rejected with positioned
// errors.
func ParseGoProgram(src string) (*Program, error) {
	return gofront.Parse(src)
}
