package parcfl

import (
	"sort"
	"testing"
)

// vectorProgram builds the paper's Fig. 2 Vector example through the public
// API (same shape as examples/quickstart).
func vectorProgram() *Program {
	const (
		tInt = TypeID(iota)
		tObject
		tObjArr
		tString
		tInteger
		tVector
	)
	const fElems = FieldID(1)
	return &Program{
		Types: []Type{
			{Name: "int"},
			{Name: "Object", Ref: true},
			{Name: "Object[]", Ref: true, Fields: []Field{{Name: "arr", ID: ArrField, Type: tObject}}},
			{Name: "String", Ref: true},
			{Name: "Integer", Ref: true},
			{Name: "Vector", Ref: true, Fields: []Field{
				{Name: "elems", ID: fElems, Type: tObjArr},
				{Name: "count", ID: 2, Type: tInt},
			}},
		},
		Methods: []Method{
			{ // 0: Vector.<init>
				Name:   "Vector.<init>",
				Locals: []LocalVar{{Name: "this", Type: tVector}, {Name: "t", Type: tObjArr}},
				Params: []int{0}, Ret: -1, Application: true,
				Body: []Stmt{
					{Kind: StAlloc, Dst: Local(1), Type: tObjArr},
					{Kind: StStore, Base: Local(0), Field: fElems, Src: Local(1)},
				},
			},
			{ // 1: Vector.add
				Name:   "Vector.add",
				Locals: []LocalVar{{Name: "this", Type: tVector}, {Name: "e", Type: tObject}, {Name: "t", Type: tObjArr}},
				Params: []int{0, 1}, Ret: -1, Application: true,
				Body: []Stmt{
					{Kind: StLoad, Dst: Local(2), Base: Local(0), Field: fElems},
					{Kind: StStore, Base: Local(2), Field: ArrField, Src: Local(1)},
				},
			},
			{ // 2: Vector.get
				Name:   "Vector.get",
				Locals: []LocalVar{{Name: "this", Type: tVector}, {Name: "t", Type: tObjArr}, {Name: "ret", Type: tObject}},
				Params: []int{0}, Ret: 2, Application: true,
				Body: []Stmt{
					{Kind: StLoad, Dst: Local(1), Base: Local(0), Field: fElems},
					{Kind: StLoad, Dst: Local(2), Base: Local(1), Field: ArrField},
				},
			},
			{ // 3: main
				Name: "main",
				Locals: []LocalVar{
					{Name: "v1", Type: tVector}, {Name: "n1", Type: tString}, {Name: "s1", Type: tObject},
					{Name: "v2", Type: tVector}, {Name: "n2", Type: tInteger}, {Name: "s2", Type: tObject},
				},
				Ret: -1, Application: true,
				Body: []Stmt{
					{Kind: StAlloc, Dst: Local(0), Type: tVector},
					{Kind: StCall, Callee: 0, Args: []VarRef{Local(0)}, Dst: NoVar},
					{Kind: StAlloc, Dst: Local(1), Type: tString},
					{Kind: StCall, Callee: 1, Args: []VarRef{Local(0), Local(1)}, Dst: NoVar},
					{Kind: StCall, Callee: 2, Args: []VarRef{Local(0)}, Dst: Local(2)},
					{Kind: StAlloc, Dst: Local(3), Type: tVector},
					{Kind: StCall, Callee: 0, Args: []VarRef{Local(3)}, Dst: NoVar},
					{Kind: StAlloc, Dst: Local(4), Type: tInteger},
					{Kind: StCall, Callee: 1, Args: []VarRef{Local(3), Local(4)}, Dst: NoVar},
					{Kind: StCall, Callee: 2, Args: []VarRef{Local(3)}, Dst: Local(5)},
				},
			},
		},
	}
}

func newVectorAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(vectorProgram())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPublicAPIPointsTo(t *testing.T) {
	a := newVectorAnalyzer(t)
	s1 := a.LocalNode(3, 2)
	o16 := a.ObjectNodes(3)[1] // n1 = new String
	o20 := a.ObjectNodes(3)[3] // n2 = new Integer

	r := a.PointsTo(s1, EmptyContext, QueryOptions{})
	if r.Aborted {
		t.Fatal("query aborted")
	}
	objs := r.Objects()
	if len(objs) != 1 || objs[0] != o16 {
		t.Fatalf("s1 points to %v, want [o16=%d]", objs, o16)
	}
	for _, o := range objs {
		if o == o20 {
			t.Fatal("context sensitivity lost through public API")
		}
	}
}

func TestPublicAPIFlowsTo(t *testing.T) {
	a := newVectorAnalyzer(t)
	o16 := a.ObjectNodes(3)[1]
	s1 := a.LocalNode(3, 2)
	s2 := a.LocalNode(3, 5)
	r := a.FlowsTo(o16, EmptyContext, QueryOptions{})
	found := map[NodeID]bool{}
	for _, nc := range r.PointsTo {
		found[nc.Node] = true
	}
	if !found[s1] {
		t.Fatal("o16 should flow to s1")
	}
	if found[s2] {
		t.Fatal("o16 must not flow to s2")
	}
}

func TestPublicAPIAlias(t *testing.T) {
	a := newVectorAnalyzer(t)
	thisVector := a.LocalNode(0, 0)
	thisGet := a.LocalNode(2, 0)
	n1 := a.LocalNode(3, 1)
	n2 := a.LocalNode(3, 4)
	if al, ok := a.Alias(thisVector, thisGet, EmptyContext, QueryOptions{}); !al || !ok {
		t.Fatalf("thisVector alias thisGet = %v/%v", al, ok)
	}
	if al, _ := a.Alias(n1, n2, EmptyContext, QueryOptions{}); al {
		t.Fatal("n1 alias n2")
	}
}

func TestPublicAPIBatchModes(t *testing.T) {
	a := newVectorAnalyzer(t)
	queries := a.ApplicationQueryVars()
	if len(queries) != 14 {
		t.Fatalf("query vars = %d, want 14", len(queries))
	}
	baseline := map[NodeID][]NodeID{}
	res, stats := a.RunBatch(queries, BatchOptions{Mode: Sequential})
	if stats.Queries != len(queries) || stats.Aborted != 0 {
		t.Fatalf("sequential stats: %+v", stats)
	}
	for _, r := range res {
		objs := append([]NodeID{}, r.Objects...)
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		baseline[r.Var] = objs
	}
	for _, mode := range []Mode{Naive, Sharing, SharingScheduling} {
		res, stats := a.RunBatch(queries, BatchOptions{Mode: mode, Threads: 4, TauF: 1, TauU: 1})
		if stats.Aborted != 0 {
			t.Fatalf("%v aborted %d", mode, stats.Aborted)
		}
		for _, r := range res {
			objs := append([]NodeID{}, r.Objects...)
			sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
			want := baseline[r.Var]
			if len(objs) != len(want) {
				t.Fatalf("%v: %s: %v vs %v", mode, a.NodeName(r.Var), objs, want)
			}
			for i := range want {
				if objs[i] != want[i] {
					t.Fatalf("%v: %s: %v vs %v", mode, a.NodeName(r.Var), objs, want)
				}
			}
		}
	}
}

func TestPublicAPISharedState(t *testing.T) {
	a := newVectorAnalyzer(t)
	sh := NewSharedStateWithThresholds(1, 1)
	s1 := a.LocalNode(3, 2)
	a.PointsTo(s1, EmptyContext, QueryOptions{Shared: sh})
	if sh.NumJumps() == 0 {
		t.Fatal("no jumps recorded through public API")
	}
	r := a.PointsTo(s1, EmptyContext, QueryOptions{Shared: sh})
	if r.JumpsTaken == 0 {
		t.Fatal("repeat query took no shortcut")
	}
	// The default-threshold constructor exists and suppresses tiny jumps.
	if st := NewSharedState(); st == nil {
		t.Fatal("NewSharedState returned nil")
	}
}

func TestPublicAPIAndersen(t *testing.T) {
	a := newVectorAnalyzer(t)
	and := a.Andersen()
	s1 := a.LocalNode(3, 2)
	// Context-insensitive conflation: both strings and integers.
	if got := len(and.PointsTo(s1)); got != 2 {
		t.Fatalf("Andersen |pts(s1)| = %d, want 2", got)
	}
	// Demand answer is a strict subset here.
	dem := a.PointsTo(s1, EmptyContext, QueryOptions{})
	if len(dem.Objects()) >= len(and.PointsTo(s1)) {
		t.Fatal("demand-driven answer not more precise than Andersen on Fig. 2")
	}
}

func TestPublicAPIInvalidProgram(t *testing.T) {
	p := vectorProgram()
	p.Methods[0].Body[0].Dst = Local(99)
	if _, err := NewAnalyzer(p); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestPublicAPIMetadata(t *testing.T) {
	a := newVectorAnalyzer(t)
	if a.NumNodes() == 0 || a.NumEdges() == 0 {
		t.Fatal("graph counters empty")
	}
	if a.Program() == nil {
		t.Fatal("Program() nil")
	}
	if name := a.NodeName(a.LocalNode(3, 0)); name != "main.v1" {
		t.Fatalf("NodeName = %q", name)
	}
	lv := a.TypeLevels()
	if lv[5] != 3 { // Vector
		t.Fatalf("L(Vector) = %d, want 3", lv[5])
	}
}

func TestPublicAPIRefinement(t *testing.T) {
	a := newVectorAnalyzer(t)
	s1 := a.LocalNode(3, 2)
	o16 := a.ObjectNodes(3)[1]

	out := a.PointsToRefined(s1, EmptyContext, RefineOptions{})
	if !out.Converged {
		t.Fatalf("refinement did not converge: %+v", out)
	}
	got := out.Final.Objects()
	if len(got) != 1 || got[0] != o16 {
		t.Fatalf("refined pts(s1) = %v, want [o16]", got)
	}

	// A weak client (set size <= 2 is fine) stops on the cheap first pass.
	weak := a.PointsToRefined(s1, EmptyContext, RefineOptions{
		Satisfied: func(r Result) bool { return len(r.Objects()) <= 2 },
	})
	if weak.Passes != 1 {
		t.Fatalf("weak client took %d passes", weak.Passes)
	}
	if weak.TotalSteps >= out.TotalSteps {
		t.Fatalf("weak client cost %d not below full refinement %d", weak.TotalSteps, out.TotalSteps)
	}
}

func TestPublicAPIExplain(t *testing.T) {
	a := newVectorAnalyzer(t)
	s1 := a.LocalNode(3, 2)
	o16 := a.ObjectNodes(3)[1]
	steps, ok := a.Explain(s1, EmptyContext, o16, QueryOptions{})
	if !ok || len(steps) < 3 {
		t.Fatalf("Explain = %v, %v", steps, ok)
	}
	if steps[0].Edge != "query" || steps[len(steps)-1].Edge != "new" {
		t.Fatalf("Explain endpoints: %v", steps)
	}
	if _, ok := a.Explain(s1, EmptyContext, a.ObjectNodes(3)[3], QueryOptions{}); ok {
		t.Fatal("Explain invented a fact")
	}
}

func TestPublicAPIIncremental(t *testing.T) {
	a, err := NewIncrementalAnalyzer(vectorProgram(), 75000)
	if err != nil {
		t.Fatal(err)
	}
	s1 := a.LocalNode(3, 2)
	o16 := a.ObjectNodes(3)[1]
	r := a.QueryPointsTo(s1, EmptyContext)
	if got := r.Objects(); len(got) != 1 || got[0] != o16 {
		t.Fatalf("pts(s1) = %v", got)
	}

	// Growing edit: a new object assigned directly into s1.
	oNew := a.AddObjectNode("oNew", 1)
	a.Apply(GraphEdit{AddEdges: []GraphEdge{{Dst: s1, Src: oNew, Kind: EdgeNew}}})
	r2 := a.QueryPointsTo(s1, EmptyContext)
	found := map[NodeID]bool{}
	for _, o := range r2.Objects() {
		found[o] = true
	}
	if !found[o16] || !found[oNew] {
		t.Fatalf("after edit pts(s1) = %v, want {o16, oNew}", r2.Objects())
	}

	// Shrinking edit: remove the direct new edge again; the answer keeps
	// o16 and (being a pure removal with retained cache) must still be a
	// superset of the exact answer.
	a.Apply(GraphEdit{RemoveEdges: []GraphEdge{{Dst: s1, Src: oNew, Kind: EdgeNew}}})
	r3 := a.QueryPointsTo(s1, EmptyContext)
	has16 := false
	for _, o := range r3.Objects() {
		if o == o16 {
			has16 = true
		}
	}
	if !has16 {
		t.Fatalf("after removal pts(s1) = %v lost o16", r3.Objects())
	}
}

func TestPublicAPIResultCache(t *testing.T) {
	a := newVectorAnalyzer(t)
	s1 := a.LocalNode(3, 2)
	cache := NewResultCache()
	r1 := a.PointsTo(s1, EmptyContext, QueryOptions{Cache: cache})
	r2 := a.PointsTo(s1, EmptyContext, QueryOptions{Cache: cache})
	if len(r1.Objects()) != 1 || len(r2.Objects()) != 1 || r1.Objects()[0] != r2.Objects()[0] {
		t.Fatalf("cache changed answers: %v vs %v", r1.Objects(), r2.Objects())
	}
	if r2.Steps >= r1.Steps {
		t.Fatalf("warm cached query not cheaper: %d vs %d", r2.Steps, r1.Steps)
	}
	// Batch mode with the cache enabled agrees with the plain batch.
	queries := a.ApplicationQueryVars()
	plain, _ := a.RunBatch(queries, BatchOptions{Mode: Sequential})
	cachedRes, st := a.RunBatch(queries, BatchOptions{Mode: SharingScheduling, Threads: 4, ResultCache: true})
	if st.Cache.Published == 0 {
		t.Fatal("batch cache published nothing")
	}
	byVar := map[NodeID]int{}
	for _, r := range plain {
		byVar[r.Var] = len(r.Objects)
	}
	for _, r := range cachedRes {
		if byVar[r.Var] != len(r.Objects) {
			t.Fatalf("%s: cached batch |pts|=%d vs %d", a.NodeName(r.Var), len(r.Objects), byVar[r.Var])
		}
	}
}

func TestPublicAPICProgramAndGo(t *testing.T) {
	// C facade.
	cprog := &CProgram{
		Funcs: []CFunc{{
			Name: "main", Application: true, Ret: -1,
			Locals: []CLocal{
				{Name: "x", Struct: -1}, // 0, addr-taken
				{Name: "p", Struct: -1}, // 1
				{Name: "v", Struct: -1}, // 2
			},
			Body: []CStmt{
				{Kind: CAddr, Dst: 1, Src: 0},
				{Kind: CMalloc, Dst: 2},
				{Kind: CStore, Base: 1, Src: 2},
			},
		}},
	}
	ca, err := NewCAnalyzer(cprog)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ca.CAddrNode(0, 0); !ok {
		t.Fatal("x should be address-taken")
	}
	if _, ok := ca.CAddrNode(0, 2); ok {
		t.Fatal("v is not address-taken")
	}
	v := ca.CLocalNode(0, 2)
	if r := ca.PointsTo(v, EmptyContext, QueryOptions{}); len(r.Objects()) != 1 {
		t.Fatalf("pts(v) = %v", r.Objects())
	}

	// Go facade.
	gprog, err := ParseGoProgram("package m\ntype T struct{ n int }\nfunc f() { x := &T{}; _ = x }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalyzer(gprog); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseGoProgram("package m\nfunc (t T) m() {}"); err == nil {
		t.Fatal("methods should be rejected")
	}

	// Summarize facade.
	sprog, err := ParseProgram(`
type O {}
func base(x: O): O { return x; }
func wrap(x: O): O { var r: O = base(x); return r; }
func main() application { var a: O = new O; var b: O = wrap(a); }
`)
	if err != nil {
		t.Fatal(err)
	}
	// wrap is not a trivial forwarder (two statements after lowering), so
	// build one that is.
	_ = sprog
	fwd := vectorProgram()
	fwd.Methods = append(fwd.Methods, Method{
		Name:   "getFwd",
		Locals: []LocalVar{{Name: "this", Type: 5}, {Name: "r", Type: 1}},
		Params: []int{0}, Ret: 1,
		Body: []Stmt{
			{Kind: StCall, Callee: 2, Args: []VarRef{Local(0)}, Dst: Local(1)},
		},
	})
	st := Summarize(fwd)
	if st.Forwarders != 1 {
		t.Fatalf("Summarize stats = %+v", st)
	}
}

func TestPublicAPIGlobals(t *testing.T) {
	p := vectorProgram()
	p.Globals = append(p.Globals, GlobalVar{Name: "G", Type: 5})
	a, err := NewAnalyzer(p)
	if err != nil {
		t.Fatal(err)
	}
	g := a.GlobalNode(0)
	if a.NodeName(g) != "G" {
		t.Fatalf("GlobalNode name = %q", a.NodeName(g))
	}
	if ref := Global(0); !ref.Global || ref.Index != 0 {
		t.Fatalf("Global(0) = %+v", ref)
	}
}

func TestPublicAPIIncrementalHelpers(t *testing.T) {
	a, err := NewIncrementalAnalyzer(vectorProgram(), 75000)
	if err != nil {
		t.Fatal(err)
	}
	l := a.AddLocalNode("fresh", 1)
	o := a.AddObjectNode("oFresh", 1)
	a.Apply(GraphEdit{AddEdges: []GraphEdge{{Dst: l, Src: o, Kind: EdgeNew}}})
	if r := a.QueryPointsTo(l, EmptyContext); len(r.Objects()) != 1 {
		t.Fatalf("pts(fresh) = %v", r.Objects())
	}
	if a.CachedJumps() < 0 {
		t.Fatal("CachedJumps negative")
	}
}
