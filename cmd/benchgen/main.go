// Command benchgen generates the synthetic benchmark suite and writes each
// benchmark's PAG to a JSON file (plus a census line per benchmark), so the
// graphs can be inspected, diffed, or consumed by external tools. The
// analysis itself never needs these files — generation is deterministic and
// experiments regenerate benchmarks on the fly — but serialised PAGs make
// the suite portable.
//
// Usage:
//
//	benchgen -out /tmp/pags                 # all 20 benchmarks at scale 0.01
//	benchgen -bench tomcat -scale 0.05 -out .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
)

func main() {
	out := flag.String("out", ".", "output directory for <name>.pag.json files")
	scale := flag.Float64("scale", 0.01, "fraction of the paper's query census to generate")
	bench := flag.String("bench", "", "comma-separated benchmark names (default: all 20)")
	flag.Parse()

	var presets []javagen.Preset
	if *bench == "" {
		presets = javagen.Presets()
	} else {
		for _, name := range strings.Split(*bench, ",") {
			p, err := javagen.PresetByName(name)
			if err != nil {
				fail(err)
			}
			presets = append(presets, p)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	fmt.Printf("%-14s %8s %8s %8s %8s %10s\n", "benchmark", "#classes", "#methods", "#nodes", "#edges", "#queries")
	for _, pr := range presets {
		prg, err := javagen.Generate(pr.Params(*scale))
		if err != nil {
			fail(err)
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*out, pr.Name+".pag.json")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := lo.Graph.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("%-14s %8d %8d %8d %8d %10d  -> %s\n",
			pr.Name, len(prg.Types), len(prg.Methods),
			lo.Graph.NumNodes(), lo.Graph.NumEdges(), len(lo.AppQueryVars), path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
