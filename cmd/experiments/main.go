// Command experiments regenerates the paper's tables and figures over the
// synthetic benchmark suite. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig6 -scale 0.01 -threads 16
//	experiments -exp table1 -bench tomcat,_202_jess
//	experiments -exp bench -json            # also writes BENCH_runs.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"parcfl/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", fmt.Sprintf("experiment to run: one of %v", experiments.Names()))
	scale := flag.Float64("scale", 0.01, "fraction of the paper's query census to generate")
	budget := flag.Int("budget", 75000, "per-query step budget B")
	threads := flag.Int("threads", 16, "maximum worker count")
	bench := flag.String("bench", "", "comma-separated benchmark names (default: all 20)")
	jsonOn := flag.Bool("json", false, "write the machine-readable report (bench experiment)")
	jsonOut := flag.String("json-out", "BENCH_runs.json", "path for the -json report (a history file; runs append or replace by -label)")
	label := flag.String("label", "", "label for the report in the history (same label replaces the earlier entry)")
	rev := flag.String("rev", "", "git revision to stamp the report with (default: auto-detect)")
	flag.Parse()

	opts := experiments.Options{
		Scale:   *scale,
		Budget:  *budget,
		Threads: *threads,
		Out:     os.Stdout,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if *jsonOn {
		opts.JSONPath = *jsonOut
	}
	opts.Label = *label
	opts.GitRev = *rev
	if opts.GitRev == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			opts.GitRev = strings.TrimSpace(string(out))
		}
	}
	if err := experiments.ByName(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
