// Command pointsto runs batches of points-to queries over a benchmark —
// either a generated preset or a serialised PAG — in any of the paper's
// four execution strategies, and prints per-run statistics plus (optionally)
// the largest points-to sets found.
//
// Usage:
//
//	pointsto -bench _202_jess -mode dq -threads 16
//	pointsto -pag tomcat.pag.json -mode seq -top 5
//	pointsto -src program.mj -mode dq
//	pointsto -bench h2 -mode d -budget 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"parcfl/internal/autopsy"
	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/kernel"
	"parcfl/internal/mjlang"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

func main() {
	bench := flag.String("bench", "", "benchmark preset name (e.g. _202_jess, tomcat)")
	pagFile := flag.String("pag", "", "serialised PAG file (from benchgen); queries all locals")
	srcFile := flag.String("src", "", "mini-Java source file (.mj); queries all application locals")
	scale := flag.Float64("scale", 0.01, "generation scale for -bench")
	mode := flag.String("mode", "dq", "execution strategy: seq | naive | d | dq")
	threads := flag.Int("threads", 16, "worker count")
	budget := flag.Int("budget", 75000, "per-query step budget (0 = unbounded)")
	kern := flag.Bool("kernel", false, "traverse the preprocessed dense graph form (identical answers, faster hot loop)")
	top := flag.Int("top", 0, "print the N queries with the largest points-to sets")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, /debug/obs, /debug/timeseries and /metrics on this address (e.g. localhost:6060)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the run (load in ui.perfetto.dev or chrome://tracing)")
	sample := flag.Duration("sample", 0, "flight-recorder sampling interval, e.g. 50ms (0 = off; series go to /debug/timeseries, /metrics and -trace-out counter tracks)")
	heatOut := flag.String("heat-out", "", "write the run's PAG heat profile (budget attribution) as JSON to this file")
	autopsyOut := flag.String("autopsy-out", "", "write autopsy reports for aborted/early-terminated queries as JSON to this file")
	heatDot := flag.String("heat-dot", "", "write the PAG with heat shading as Graphviz DOT to this file")
	flag.Parse()

	// Observability is set up before the graph is built so the flight
	// recorder's history covers generation and lowering, not just the run.
	var sink *obs.Sink
	var rec *obs.Recorder
	var srv *http.Server
	if *debugAddr != "" || *traceOut != "" || *sample > 0 {
		cfg := obs.Config{Workers: *threads, TraceCap: 1 << 16}
		if *traceOut != "" {
			cfg.SpanCap = 1 << 16
		}
		sink = obs.New(cfg)
		if *sample > 0 {
			rec = obs.NewRecorder(sink, obs.RecorderConfig{Interval: *sample})
			sink.AttachRecorder(rec)
			rec.Start()
		}
		if *debugAddr != "" {
			var addr net.Addr
			var err error
			srv, addr, err = obs.ServeDebug(*debugAddr, sink)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/\n", addr)
		}
	}
	// cleanup quiesces observability exactly once — on the normal exit path
	// below or on SIGINT/SIGTERM — stopping the sampler (which takes a
	// final point), flushing the trace file, and gracefully shutting down
	// the debug server instead of leaking its goroutine.
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			rec.Stop()
			if *traceOut != "" {
				if err := obs.WriteTraceFile(*traceOut, sink); err != nil {
					fmt.Fprintln(os.Stderr, "pointsto:", err)
				} else {
					fmt.Fprintf(os.Stderr, "trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
				}
			}
			if err := obs.ShutdownDebug(srv, 2*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "pointsto: debug shutdown:", err)
			}
		})
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cleanup()
		os.Exit(1)
	}()

	var g *pag.Graph
	var queries []pag.NodeID
	var levels []int
	switch {
	case *bench != "":
		pr, err := javagen.PresetByName(*bench)
		if err != nil {
			fail(err)
		}
		prg, err := javagen.Generate(pr.Params(*scale))
		if err != nil {
			fail(err)
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			fail(err)
		}
		g, queries, levels = lo.Graph, lo.AppQueryVars, lo.TypeLevels
	case *pagFile != "":
		f, err := os.Open(*pagFile)
		if err != nil {
			fail(err)
		}
		g, err = pag.ReadJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		for _, v := range g.Variables() {
			if g.Node(v).Kind == pag.KindLocal {
				queries = append(queries, v)
			}
		}
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fail(err)
		}
		prg, err := mjlang.Parse(string(data))
		if err != nil {
			fail(fmt.Errorf("%s:%w", *srcFile, err))
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			fail(err)
		}
		g, queries, levels = lo.Graph, lo.AppQueryVars, lo.TypeLevels
	default:
		fail(fmt.Errorf("need -bench, -pag or -src"))
	}

	var m engine.Mode
	switch strings.ToLower(*mode) {
	case "seq":
		m = engine.Seq
	case "naive":
		m = engine.Naive
	case "d":
		m = engine.D
	case "dq":
		m = engine.DQ
	default:
		fail(fmt.Errorf("unknown mode %q (want seq|naive|d|dq)", *mode))
	}

	// The heat collector exists only when a heat/autopsy output was asked
	// for: profiling every query otherwise costs allocations for nothing.
	var col *autopsy.Collector
	if *heatOut != "" || *autopsyOut != "" || *heatDot != "" {
		col = autopsy.NewCollector(g, *budget)
		sink.AttachHeat(col)
	}

	var prep *kernel.Prep
	if *kern {
		prep = kernel.Build(g)
	}
	res, st := engine.Run(g, queries, engine.Config{
		Mode: m, Threads: *threads, Budget: *budget, TypeLevels: levels, Obs: sink,
		Heat: col, Kernel: prep,
	})
	if *heatOut != "" {
		if err := writeJSON(*heatOut, col.Heat()); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "heat profile written to %s\n", *heatOut)
	}
	if *autopsyOut != "" {
		reports, dropped := col.Autopsies()
		payload := struct {
			Schema  string            `json:"schema"`
			Budget  int               `json:"budget"`
			Dropped int               `json:"dropped,omitempty"`
			Reports []*autopsy.Report `json:"reports"`
		}{Schema: "parcfl-autopsy-batch/v1", Budget: *budget, Dropped: dropped, Reports: reports}
		if err := writeJSON(*autopsyOut, payload); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "%d autopsy report(s) written to %s\n", len(reports), *autopsyOut)
	}
	if *heatDot != "" {
		f, err := os.Create(*heatDot)
		if err != nil {
			fail(err)
		}
		err = g.WriteDOTOpts(f, col.DOTOptions(nil))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "heat overlay written to %s\n", *heatDot)
	}
	cleanup()

	fmt.Printf("strategy:            %s x%d\n", st.Mode, st.Threads)
	fmt.Printf("graph:               %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("queries:             %d (completed %d, aborted %d, early-terminated %d)\n",
		st.Queries, st.Completed, st.Aborted, st.EarlyTerminations)
	fmt.Printf("wall time:           %v\n", st.Wall)
	fmt.Printf("steps:               %d total, %d walked, %d saved by jmp shortcuts (R_S=%.2f)\n",
		st.TotalSteps, st.StepsWalked(), st.StepsSaved, st.RS())
	if m == engine.D || m == engine.DQ {
		fmt.Printf("jmp edges:           %d finished, %d unfinished (suppressed: %d/%d)\n",
			st.Share.FinishedAdded, st.Share.UnfinishedAdded,
			st.Share.FinishedSuppressed, st.Share.UnfinishedSuppressed)
	}
	if m == engine.DQ {
		fmt.Printf("schedule:            %d groups, avg size %.1f\n", st.NumGroups, st.AvgGroupSize)
	}

	if *top > 0 {
		sort.Slice(res, func(i, j int) bool { return len(res[i].Objects) > len(res[j].Objects) })
		n := *top
		if n > len(res) {
			n = len(res)
		}
		fmt.Printf("\nlargest points-to sets:\n")
		for _, r := range res[:n] {
			status := ""
			if r.Aborted {
				status = " [aborted]"
			}
			fmt.Printf("  %-40s |pts|=%d steps=%d%s\n", g.Node(r.Var).Name, len(r.Objects), r.Steps, status)
		}
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pointsto:", err)
	os.Exit(1)
}
