// Command pagdump renders a program's Pointer Assignment Graph: statistics,
// a textual edge listing, or Graphviz DOT (for paper-style figures like the
// Fig. 2 PAG).
//
// Usage:
//
//	pagdump -src program.mj -dot > pag.dot
//	pagdump -bench _209_db -stats
//	pagdump -pag file.pag.json -edges | head
package main

import (
	"flag"
	"fmt"
	"os"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/mjlang"
	"parcfl/internal/pag"
)

func main() {
	bench := flag.String("bench", "", "benchmark preset name")
	pagFile := flag.String("pag", "", "serialised PAG file")
	srcFile := flag.String("src", "", "mini-Java source file")
	scale := flag.Float64("scale", 0.01, "generation scale for -bench")
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	showUnfinished := flag.Bool("show-unfinished", false, "with -dot, draw the special O (unfinished) node")
	edges := flag.Bool("edges", false, "emit a textual edge listing")
	stats := flag.Bool("stats", true, "emit summary statistics")
	flag.Parse()

	var g *pag.Graph
	switch {
	case *bench != "":
		pr, err := javagen.PresetByName(*bench)
		if err != nil {
			fail(err)
		}
		prg, err := javagen.Generate(pr.Params(*scale))
		if err != nil {
			fail(err)
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			fail(err)
		}
		g = lo.Graph
	case *pagFile != "":
		f, err := os.Open(*pagFile)
		if err != nil {
			fail(err)
		}
		g, err = pag.ReadJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fail(err)
		}
		prg, err := mjlang.Parse(string(data))
		if err != nil {
			fail(fmt.Errorf("%s:%w", *srcFile, err))
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			fail(err)
		}
		g = lo.Graph
	default:
		fail(fmt.Errorf("need -bench, -pag or -src"))
	}

	switch {
	case *dot:
		opt := pag.DOTOptions{ShowUnfinished: *showUnfinished}
		if err := g.WriteDOTOpts(os.Stdout, opt); err != nil {
			fail(err)
		}
	case *edges:
		for id := 0; id < g.NumNodes(); id++ {
			dst := pag.NodeID(id)
			for _, he := range g.In(dst) {
				fmt.Printf("%-24s <-%-10s- %s\n",
					g.Node(dst).Name, edgeText(he), g.Node(he.Other).Name)
			}
		}
	case *stats:
		kinds := map[pag.NodeKind]int{}
		for id := 0; id < g.NumNodes(); id++ {
			kinds[g.Node(pag.NodeID(id)).Kind]++
		}
		edgeKinds := map[pag.EdgeKind]int{}
		for id := 0; id < g.NumNodes(); id++ {
			for _, he := range g.In(pag.NodeID(id)) {
				edgeKinds[he.Kind]++
			}
		}
		fmt.Printf("nodes: %d (locals %d, globals %d, objects %d)\n",
			g.NumNodes(), kinds[pag.KindLocal], kinds[pag.KindGlobal], kinds[pag.KindObject])
		fmt.Printf("edges: %d\n", g.NumEdges())
		for _, k := range []pag.EdgeKind{pag.EdgeNew, pag.EdgeAssignLocal, pag.EdgeAssignGlobal, pag.EdgeLoad, pag.EdgeStore, pag.EdgeParam, pag.EdgeRet} {
			fmt.Printf("  %-8s %d\n", k, edgeKinds[k])
		}
		fmt.Printf("fields: %d, call sites: %d\n", len(g.Fields()), g.NumCallSites())
	}
}

func edgeText(he pag.HalfEdge) string {
	switch he.Kind {
	case pag.EdgeLoad, pag.EdgeStore:
		return fmt.Sprintf("%s(f%d)", he.Kind, he.Label)
	case pag.EdgeParam, pag.EdgeRet:
		return fmt.Sprintf("%s%d", he.Kind, he.Label)
	}
	return he.Kind.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pagdump:", err)
	os.Exit(1)
}
