// Command parcflload soaks a running parcfld daemon with open-loop load.
//
//	$ parcflload -addr localhost:7070 -rate 200 -duration 10s
//	$ parcflload -addr localhost:7070 -rate 500 -duration 30s -json report.json
//	$ parcflload -addr localhost:7070,localhost:7071 -rate 500 -duration 30s
//
// Arrivals are Poisson spaced at the target rate regardless of how the
// daemon is keeping up — the open-loop shape that exposes queue growth,
// overload shedding and tail inflation, unlike a closed-loop replay whose
// clients slow down with the server. Each request queries one uniformly
// chosen variable (the daemon's query census by default, or the names given
// as arguments) under its own request ID and a freshly minted W3C
// traceparent (one trace per logical request, shared across overload
// retries), and the phase timings the daemon returns are aggregated into a
// machine-readable parcfl-soak/v1 report. Slow request IDs from the report
// resolve live against the daemon's tail-sampled trace store
// (parcflctl traces get <rid>).
//
// The process exits nonzero if any request failed with a hard error
// (overload shedding and deadline misses are outcomes, not failures — they
// are reported and left to the caller to gate on).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"parcfl/internal/diag"
	"parcfl/internal/experiments"
	"parcfl/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcflload:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "localhost:7070", "parcfld/parcflrouter address(es); comma-separated targets are load-balanced round-robin")
	rate := flag.Float64("rate", 200, "target arrival rate in requests/second (Poisson spaced)")
	duration := flag.Duration("duration", 10*time.Second, "how long arrivals keep coming")
	inflight := flag.Int("inflight", 64, "max outstanding requests; arrivals beyond it are shed client-side")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	seed := flag.Int64("seed", 1, "seed for the arrival process and variable choice")
	retry := flag.Bool("retry", true, "retry each overload rejection once, honouring Retry-After")
	jsonPath := flag.String("json", "", "write the soak report as JSON to this file (\"-\" for stdout)")
	maxVars := flag.Int("max-vars", 0, "use at most N census variables (0 = all)")
	bundleOnFail := flag.String("bundle-on-fail", "", "when any request hard-fails, deadlines, sheds or overloads, trigger a diagnostic bundle on the daemon and save it into this directory")
	flag.Parse()

	// Multiple -addr targets (e.g. a set of interchangeable routers) are hit
	// round-robin: request k goes to target k mod len(targets), so the load
	// spreads evenly without any coordination.
	var bases []string
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		bases = append(bases, a)
	}
	if len(bases) == 0 {
		fail(fmt.Errorf("no target in -addr %q", *addr))
	}
	clients := make([]*server.Client, len(bases))
	for i, b := range bases {
		clients[i] = server.NewClient(b, nil)
	}
	base := bases[0]
	var rr atomic.Int64
	nextClient := func() *server.Client {
		return clients[int((rr.Add(1)-1)%int64(len(clients)))]
	}

	vars := flag.Args()
	if len(vars) == 0 {
		// Any target can serve the census — they front the same program.
		var fetched []string
		var err error
		for _, cl := range clients {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			fetched, err = cl.Vars(ctx)
			cancel()
			if err == nil {
				break
			}
		}
		if err != nil {
			fail(fmt.Errorf("fetching query census: %w", err))
		}
		vars = fetched
	}
	if *maxVars > 0 && *maxVars < len(vars) {
		vars = vars[:*maxVars]
	}
	if len(vars) == 0 {
		fail(fmt.Errorf("daemon exposes no query variables and none were given"))
	}

	fmt.Fprintf(os.Stderr, "parcflload: soaking %s at %.0f req/s for %s over %d variables\n",
		strings.Join(bases, ","), *rate, *duration, len(vars))

	rep := experiments.RunSoak(experiments.SoakOptions{
		Rate: *rate, Duration: *duration, MaxInflight: *inflight,
		Seed: *seed, Timeout: *timeout, Retry: *retry, RIDPrefix: "load",
	}, len(vars), func(ctx context.Context, idx int, rid string) (server.Timings, error) {
		reply, err := nextClient().QueryRequest(ctx, rid, []string{vars[idx]}, *timeout)
		if err != nil {
			return server.Timings{}, err
		}
		if tm := reply.Results[0].Timings; tm != nil {
			return *tm, nil
		}
		return server.Timings{}, nil
	})

	fmt.Printf("sent       %d (%d shed client-side at inflight cap %d)\n", rep.Sent, rep.Shed, *inflight)
	fmt.Printf("outcomes   %d ok, %d overloaded (%.1f%%), %d deadline, %d error, %d retried\n",
		rep.Succeeded, rep.Overloaded, 100*rep.OverloadRate, rep.Deadlined, rep.Errored, rep.Retried)
	fmt.Printf("throughput %.1f req/s achieved of %.1f targeted\n", rep.QPS, rep.TargetQPS)
	fmt.Printf("latency    mean %s  p50 %s  p99 %s  p99.9 %s\n",
		time.Duration(rep.MeanNS), time.Duration(rep.P50NS),
		time.Duration(rep.P99NS), time.Duration(rep.P999NS))
	ph := rep.Phases
	fmt.Printf("phases     admit %.1f%%  queue %.1f%%  solve %.1f%%  fanout %.1f%%\n",
		100*ph.AdmitShare, 100*ph.QueueShare, 100*ph.SolveShare, 100*ph.FanoutShare)
	for i, sr := range rep.Slowest {
		fmt.Printf("slow[%d]    rid=%s total=%s (admit %s, queue %s, solve %s, fanout %s, marshal %s)\n",
			i, sr.RID, time.Duration(sr.LatencyNS),
			time.Duration(sr.Timings.AdmitNS), time.Duration(sr.Timings.QueueWaitNS),
			time.Duration(sr.Timings.SolveNS), time.Duration(sr.Timings.FanoutNS),
			time.Duration(sr.Timings.MarshalNS))
	}

	if *bundleOnFail != "" && rep.Errored+rep.Deadlined+rep.Overloaded+rep.Shed > 0 {
		if path, err := fetchBundle(base, *bundleOnFail); err != nil {
			fmt.Fprintln(os.Stderr, "parcflload: bundle-on-fail:", err)
		} else {
			fmt.Printf("bundle     anomalies detected; daemon diagnostic bundle saved to %s\n", path)
		}
	}

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		if *jsonPath != "-" {
			fmt.Printf("report     written to %s (%s)\n", *jsonPath, rep.Schema)
		}
	}

	if rep.Errored > 0 {
		fail(fmt.Errorf("%d requests failed with hard errors", rep.Errored))
	}
}

// fetchBundle asks the daemon for a manual diagnostic bundle (falling back
// to its most recent existing bundle when the manual trigger is in
// cooldown — a watchdog rule probably captured one already) and saves the
// tar.gz into dir. Returns the saved path.
func fetchBundle(base, dir string) (string, error) {
	httpc := &http.Client{Timeout: 30 * time.Second}

	var id string
	resp, err := httpc.Get(base + "/debug/bundle?trigger=1&reason=parcflload+anomalies")
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var info diag.BundleInfo
		if err := json.Unmarshal(body, &info); err != nil {
			return "", err
		}
		id = info.ID
	case http.StatusTooManyRequests:
		// Cooldown: list and take the newest bundle instead.
		resp, err = httpc.Get(base + "/debug/bundle")
		if err != nil {
			return "", err
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var list struct {
			Bundles []diag.BundleInfo `json:"bundles"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			return "", err
		}
		if len(list.Bundles) == 0 {
			return "", fmt.Errorf("manual trigger in cooldown and no bundles on the daemon")
		}
		id = list.Bundles[len(list.Bundles)-1].ID
	default:
		return "", fmt.Errorf("trigger: %s: %s", resp.Status, body)
	}

	resp, err = httpc.Get(base + "/debug/bundle/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fetch %s: %s", id, resp.Status)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("bundle-%s.tar.gz", id[:12]))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", err
	}
	return path, nil
}
