// Command benchdiff is the bench regression gate: it compares two labelled
// reports of a BENCH_runs.json history (see cmd/experiments -json) against
// percentage thresholds, prints a delta table, and exits non-zero when the
// head report regressed — wall time up, the sharing counters (steps_saved,
// jumps_taken, early_terminations) down, serving throughput (qps) down, or
// the soak p99.9 tail up (direction-aware like the wall gate, but with a
// deliberately looser threshold — the extreme tail is noisy).
// Soak rows also carry informational phase-share drift cells (basis points
// of the request's end-to-end time) that localise a regression to admit,
// queue-wait, solve or fan-out without gating on it.
//
// Usage:
//
//	benchdiff -base ci-baseline -head ci
//	benchdiff -file BENCH_runs.json -base baseline -head pr-7 -wall-pct 10
//	benchdiff -base ci-baseline -head ci -wall-pct 0   # counters only
//
// Exit status: 0 when no gate fails, 1 on regression, 2 on usage or I/O
// errors. Wall time is host-bound — when base and head come from different
// machines, disable or loosen the wall gate (-wall-pct 0 / a large value)
// and let the deterministic counters carry the comparison.
//
// Cells present only in head (a benchmark or mode added since the baseline
// was recorded, e.g. a kernel-on row) are listed as "new in head (ungated)"
// and never fail the gate; they start being gated once a baseline containing
// them is recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parcfl/internal/experiments"
)

func main() {
	def := experiments.DefaultDiffOptions()
	file := flag.String("file", "BENCH_runs.json", "bench history file")
	base := flag.String("base", "", "label of the baseline report")
	head := flag.String("head", "", "label of the candidate report")
	wallPct := flag.Float64("wall-pct", def.WallPct,
		"fail when wall_ns grows more than this percent (0 disables the wall gate)")
	countPct := flag.Float64("count-pct", def.CountPct,
		"fail when steps_saved/jumps_taken/early_terminations drop more than this percent (0 disables)")
	minCount := flag.Int64("min-count", def.MinCount,
		"ignore counter drops whose baseline value is below this floor")
	minWall := flag.Duration("min-wall", time.Duration(def.MinWallNS),
		"ignore wall regressions whose baseline ran shorter than this")
	qpsPct := flag.Float64("qps-pct", def.QPSPct,
		"fail when a serving cell's qps drops more than this percent (0 disables the qps gate)")
	minQPS := flag.Float64("min-qps", def.MinQPS,
		"ignore qps drops whose baseline rate is below this floor")
	tailPct := flag.Float64("tail-pct", def.TailPct,
		"fail when a soak cell's p999_ns grows more than this percent (0 disables the tail gate)")
	minTail := flag.Duration("min-tail", time.Duration(def.MinTailNS),
		"ignore tail regressions whose baseline p99.9 is below this floor")
	jsonOut := flag.String("json", "", "also write the diff report as JSON to this file (written before the exit code is decided, so CI can upload it on failure)")
	flag.Parse()

	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -base and -head labels")
		flag.Usage()
		os.Exit(2)
	}
	hist, err := experiments.LoadBenchHistory(*file)
	if err != nil {
		fail(err)
	}
	baseRep, err := experiments.ReportByLabel(hist, *base)
	if err != nil {
		fail(err)
	}
	headRep, err := experiments.ReportByLabel(hist, *head)
	if err != nil {
		fail(err)
	}
	d := experiments.DiffReports(baseRep, headRep, experiments.DiffOptions{
		WallPct:   *wallPct,
		CountPct:  *countPct,
		MinCount:  *minCount,
		MinWallNS: int64(*minWall),
		QPSPct:    *qpsPct,
		MinQPS:    *minQPS,
		TailPct:   *tailPct,
		MinTailNS: int64(*minTail),
	})
	d.WriteTable(os.Stdout)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, d); err != nil {
			fail(err)
		}
	}
	if d.Regressions > 0 {
		os.Exit(1)
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
