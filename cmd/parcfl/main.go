// Command parcfl is an interactive query shell over a program: load
// mini-Java or Go source (or a generated benchmark), then issue demand
// queries the way an IDE or debugging client would.
//
//	$ parcfl -src examples/quickstart-src/vector.mj
//	> pts main.s1
//	> flows o@main:2
//	> alias main.s1 main.s2
//	> explain main.s1 o@main:2
//	> stats
//	> help
//
// Variables are named method.local (as printed by `vars`); objects by their
// allocation-site name (as printed in query results).
package main

import (
	"flag"
	"fmt"
	"os"

	"parcfl/internal/frontend"
	"parcfl/internal/gofront"
	"parcfl/internal/javagen"
	"parcfl/internal/mjlang"
	"parcfl/internal/repl"
)

func main() {
	srcFile := flag.String("src", "", "mini-Java source file (.mj)")
	goFile := flag.String("go", "", "Go source file")
	bench := flag.String("bench", "", "benchmark preset name")
	scale := flag.Float64("scale", 0.005, "generation scale for -bench")
	budget := flag.Int("budget", 75000, "per-query step budget")
	flag.Parse()

	var prg *frontend.Program
	var err error
	switch {
	case *srcFile != "":
		var data []byte
		data, err = os.ReadFile(*srcFile)
		if err == nil {
			prg, err = mjlang.Parse(string(data))
		}
	case *goFile != "":
		var data []byte
		data, err = os.ReadFile(*goFile)
		if err == nil {
			prg, err = gofront.Parse(string(data))
		}
	case *bench != "":
		var pr javagen.Preset
		pr, err = javagen.PresetByName(*bench)
		if err == nil {
			prg, err = javagen.Generate(pr.Params(*scale))
		}
	default:
		err = fmt.Errorf("need -src, -go or -bench")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}

	sh := repl.New(lo, *budget, os.Stdout)
	sh.Banner()
	sh.Run(os.Stdin)
}
