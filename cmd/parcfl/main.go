// Command parcfl is an interactive query shell over a program: load
// mini-Java or Go source (or a generated benchmark), then issue demand
// queries the way an IDE or debugging client would.
//
//	$ parcfl -src examples/quickstart-src/vector.mj
//	> pts main.s1
//	> flows o@main:2
//	> alias main.s1 main.s2
//	> explain main.s1 o@main:2
//	> stats
//	> help
//
// Variables are named method.local (as printed by `vars`); objects by their
// allocation-site name (as printed in query results).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"parcfl/internal/autopsy"
	"parcfl/internal/frontend"
	"parcfl/internal/gofront"
	"parcfl/internal/javagen"
	"parcfl/internal/mjlang"
	"parcfl/internal/obs"
	"parcfl/internal/repl"
)

func main() {
	srcFile := flag.String("src", "", "mini-Java source file (.mj)")
	goFile := flag.String("go", "", "Go source file")
	bench := flag.String("bench", "", "benchmark preset name")
	scale := flag.Float64("scale", 0.005, "generation scale for -bench")
	budget := flag.Int("budget", 75000, "per-query step budget")
	kern := flag.Bool("kernel", false, "traverse the preprocessed dense graph form (identical answers, faster hot loop)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, /debug/obs, /debug/timeseries and /metrics on this address (e.g. localhost:6060)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the session on exit (load in ui.perfetto.dev or chrome://tracing)")
	sample := flag.Duration("sample", 0, "flight-recorder sampling interval, e.g. 50ms (0 = off; toggle later with the `record` command)")
	heatOut := flag.String("heat-out", "", "write the session's PAG heat profile (budget attribution) as JSON on exit")
	autopsyOut := flag.String("autopsy-out", "", "write autopsy reports for the session's aborted queries as JSON on exit")
	flag.Parse()

	var prg *frontend.Program
	var err error
	switch {
	case *srcFile != "":
		var data []byte
		data, err = os.ReadFile(*srcFile)
		if err == nil {
			prg, err = mjlang.Parse(string(data))
		}
	case *goFile != "":
		var data []byte
		data, err = os.ReadFile(*goFile)
		if err == nil {
			prg, err = gofront.Parse(string(data))
		}
	case *bench != "":
		var pr javagen.Preset
		pr, err = javagen.PresetByName(*bench)
		if err == nil {
			prg, err = javagen.Generate(pr.Params(*scale))
		}
	default:
		err = fmt.Errorf("need -src, -go or -bench")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}

	sh := repl.New(lo, *budget, os.Stdout)
	if *kern {
		sh.UseKernel()
	}
	var sink *obs.Sink
	var rec *obs.Recorder
	var srv *http.Server
	if *debugAddr != "" || *traceOut != "" || *sample > 0 {
		cfg := obs.Config{Workers: 1, TraceCap: 1 << 16}
		if *traceOut != "" {
			cfg.SpanCap = 1 << 16
		}
		sink = obs.New(cfg)
		if *sample > 0 {
			rec = obs.NewRecorder(sink, obs.RecorderConfig{Interval: *sample})
			sink.AttachRecorder(rec)
			rec.Start()
		}
		if *debugAddr != "" {
			var addr net.Addr
			srv, addr, err = obs.ServeDebug(*debugAddr, sink)
			if err != nil {
				fmt.Fprintln(os.Stderr, "parcfl:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/\n", addr)
		}
		sh.SetObs(sink)
	}
	// cleanup quiesces observability exactly once — at normal session end
	// or on SIGINT/SIGTERM: stop the sampler (final point), write the
	// pending trace (the repl's `record` command may have attached a
	// recorder after startup, so re-read it from the sink), and gracefully
	// shut down the debug server rather than leaking its goroutine.
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			rec.Stop()
			sh.Obs().FlightRecorder().Stop()
			if *traceOut != "" {
				if err := obs.WriteTraceFile(*traceOut, sh.Obs()); err != nil {
					fmt.Fprintln(os.Stderr, "parcfl:", err)
				} else {
					fmt.Fprintf(os.Stderr, "trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
				}
			}
			if *heatOut != "" {
				if err := writeJSON(*heatOut, sh.Heat().Heat()); err != nil {
					fmt.Fprintln(os.Stderr, "parcfl:", err)
				} else {
					fmt.Fprintf(os.Stderr, "heat profile written to %s\n", *heatOut)
				}
			}
			if *autopsyOut != "" {
				reports, dropped := sh.Heat().Autopsies()
				payload := struct {
					Schema  string            `json:"schema"`
					Budget  int               `json:"budget"`
					Dropped int               `json:"dropped,omitempty"`
					Reports []*autopsy.Report `json:"reports"`
				}{Schema: "parcfl-autopsy-batch/v1", Budget: *budget, Dropped: dropped, Reports: reports}
				if err := writeJSON(*autopsyOut, payload); err != nil {
					fmt.Fprintln(os.Stderr, "parcfl:", err)
				} else {
					fmt.Fprintf(os.Stderr, "%d autopsy report(s) written to %s\n", len(reports), *autopsyOut)
				}
			}
			if err := obs.ShutdownDebug(srv, 2*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "parcfl: debug shutdown:", err)
			}
		})
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cleanup()
		os.Exit(1)
	}()

	sh.Banner()
	sh.Run(os.Stdin)
	cleanup()
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
