// Command parcfl is an interactive query shell over a program: load
// mini-Java or Go source (or a generated benchmark), then issue demand
// queries the way an IDE or debugging client would.
//
//	$ parcfl -src examples/quickstart-src/vector.mj
//	> pts main.s1
//	> flows o@main:2
//	> alias main.s1 main.s2
//	> explain main.s1 o@main:2
//	> stats
//	> help
//
// Variables are named method.local (as printed by `vars`); objects by their
// allocation-site name (as printed in query results).
package main

import (
	"flag"
	"fmt"
	"os"

	"parcfl/internal/frontend"
	"parcfl/internal/gofront"
	"parcfl/internal/javagen"
	"parcfl/internal/mjlang"
	"parcfl/internal/obs"
	"parcfl/internal/repl"
)

func main() {
	srcFile := flag.String("src", "", "mini-Java source file (.mj)")
	goFile := flag.String("go", "", "Go source file")
	bench := flag.String("bench", "", "benchmark preset name")
	scale := flag.Float64("scale", 0.005, "generation scale for -bench")
	budget := flag.Int("budget", 75000, "per-query step budget")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof, /debug/obs and /metrics on this address (e.g. localhost:6060)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the session on exit (load in ui.perfetto.dev or chrome://tracing)")
	flag.Parse()

	var prg *frontend.Program
	var err error
	switch {
	case *srcFile != "":
		var data []byte
		data, err = os.ReadFile(*srcFile)
		if err == nil {
			prg, err = mjlang.Parse(string(data))
		}
	case *goFile != "":
		var data []byte
		data, err = os.ReadFile(*goFile)
		if err == nil {
			prg, err = gofront.Parse(string(data))
		}
	case *bench != "":
		var pr javagen.Preset
		pr, err = javagen.PresetByName(*bench)
		if err == nil {
			prg, err = javagen.Generate(pr.Params(*scale))
		}
	default:
		err = fmt.Errorf("need -src, -go or -bench")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parcfl:", err)
		os.Exit(1)
	}

	sh := repl.New(lo, *budget, os.Stdout)
	if *debugAddr != "" || *traceOut != "" {
		cfg := obs.Config{Workers: 1, TraceCap: 1 << 16}
		if *traceOut != "" {
			cfg.SpanCap = 1 << 16
		}
		sink := obs.New(cfg)
		if *debugAddr != "" {
			_, addr, err := obs.ServeDebug(*debugAddr, sink)
			if err != nil {
				fmt.Fprintln(os.Stderr, "parcfl:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/\n", addr)
		}
		sh.SetObs(sink)
	}
	sh.Banner()
	sh.Run(os.Stdin)
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sh.Obs()); err != nil {
			fmt.Fprintln(os.Stderr, "parcfl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}
