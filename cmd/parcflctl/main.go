// Command parcflctl is the ops CLI over a running parcfld daemon's debug
// surface — the counterpart to parcflq (queries) and parcflload (load):
//
//	$ parcflctl traces ls -outcome overload        # retained request traces
//	$ parcflctl traces get load-1-42 -o req.json   # one request, Perfetto JSON
//	$ parcflctl slo                                # burn rates per window
//	$ parcflctl statusz                            # build + process identity
//	$ parcflctl heat                               # solver heat snapshot
//	$ parcflctl bundle ls                          # diagnostic bundles
//	$ parcflctl bundle trigger -reason "paged"     # capture one now
//	$ parcflctl bundle fetch <id> -o out.tar.gz    # download one
//	$ parcflctl -addr localhost:7070 cluster ls    # shard health via the router
//	$ parcflctl cluster slo                        # per-shard burn rates
//
// Every subcommand is a thin client over one GET endpoint, so none of the
// daemon's JSON debug endpoints require hand-rolled curl + jq. -json prints
// the wire payload verbatim for scripts; the default output is for humans.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"parcfl/internal/cluster/router"
	"parcfl/internal/diag"
	"parcfl/internal/obs"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcflctl:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: parcflctl [-addr host:port] [-json] [-timeout d] <command> [args]

commands:
  traces ls [-rid s] [-min d] [-outcome s] [-policy s] [-limit n]
              list retained request traces (newest first)
  traces get <rid> [-o file]
              fetch one request's trace as Perfetto/Chrome JSON
  slo         SLO attainment and burn rates per window
  statusz     build identity and process facts
  heat        solver heat snapshot
  bundle ls   list diagnostic bundles on the daemon
  bundle trigger [-reason s]
              capture a diagnostic bundle now
  bundle fetch <id> [-o file]
              download a bundle tar.gz
  cluster ls  shard health/latency rollup from a parcflrouter
  cluster slo per-shard SLO burn rates side by side (via the router)
`)
	os.Exit(2)
}

// ctl carries the resolved global flags into every subcommand.
type ctl struct {
	base    string
	asJSON  bool
	timeout time.Duration
}

func main() {
	addr := flag.String("addr", "localhost:7070", "parcfld address (host:port or full URL)")
	asJSON := flag.Bool("json", false, "print the daemon's raw JSON payload instead of the human format")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	flag.Usage = usage
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := ctl{base: strings.TrimRight(base, "/"), asJSON: *asJSON, timeout: *timeout}

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "traces":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "ls":
			c.tracesLs(args[2:])
		case "get":
			c.tracesGet(args[2:])
		default:
			usage()
		}
	case "slo":
		c.slo(args[1:])
	case "statusz":
		c.rawJSON("/debug/statusz", "statusz")
	case "heat":
		c.rawJSON("/debug/heat", "heat")
	case "cluster":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "ls":
			c.clusterLs(args[2:])
		case "slo":
			c.clusterSLO(args[2:])
		default:
			usage()
		}
	case "bundle":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "ls":
			c.bundleLs(args[2:])
		case "trigger":
			c.bundleTrigger(args[2:])
		case "fetch":
			c.bundleFetch(args[2:])
		default:
			usage()
		}
	default:
		usage()
	}
}

// get fetches base+path and decodes the JSON body into out (skipped when
// out is nil). Non-200 responses become errors carrying the body.
func (c ctl) get(path string, out any) error {
	hc := &http.Client{Timeout: c.timeout}
	resp, err := hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

// rawJSON serves the statusz/heat style subcommands: fetch one endpoint,
// pretty-print it. The human format and -json agree here — these payloads
// are already flat summaries.
func (c ctl) rawJSON(path, what string) {
	var v any
	if err := c.get(path, &v); err != nil {
		fail(err)
	}
	if v == nil {
		fail(fmt.Errorf("%s: daemon returned no %s payload", path, what))
	}
	printJSON(v)
}

func (c ctl) tracesLs(args []string) {
	fs := flag.NewFlagSet("traces ls", flag.ExitOnError)
	rid := fs.String("rid", "", "only this request ID (or trace ID)")
	min := fs.Duration("min", 0, "only requests at least this slow")
	outcome := fs.String("outcome", "", "only this outcome (success, overload, deadline, error)")
	policy := fs.String("policy", "", "only this retention policy (outcome, anomaly, slow, sampled)")
	limit := fs.Int("limit", 32, "return at most N traces (0 = all retained)")
	_ = fs.Parse(args)

	q := url.Values{}
	if *rid != "" {
		q.Set("rid", *rid)
	}
	if *min > 0 {
		q.Set("min_ns", fmt.Sprint(min.Nanoseconds()))
	}
	if *outcome != "" {
		q.Set("outcome", *outcome)
	}
	if *policy != "" {
		q.Set("policy", *policy)
	}
	q.Set("limit", fmt.Sprint(*limit))

	var payload obs.TracesPayload
	if err := c.get("/debug/traces?"+q.Encode(), &payload); err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(payload)
		return
	}
	st := payload.Store
	fmt.Printf("store      %d/%d retained (observed %d, sampled-out %d, evicted %d)\n",
		st.Retained, st.Capacity, st.Observed, st.Dropped, st.Evicted)
	var policies []string
	for p := range st.RetainedByPolicy {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	for _, p := range policies {
		fmt.Printf("  by %-8s %d\n", p, st.RetainedByPolicy[p])
	}
	if st.ThresholdNS > 0 {
		fmt.Printf("slow-over  %s (live p-quantile threshold)\n", time.Duration(st.ThresholdNS))
	}
	if st.AnomalyActive {
		fmt.Println("anomaly    window ACTIVE (everything is being retained)")
	}
	if len(payload.Traces) == 0 {
		fmt.Println("no traces match")
		return
	}
	fmt.Printf("%-24s %8s %-8s %-8s %12s  %s\n", "RID", "SEQ", "OUTCOME", "POLICY", "TOTAL", "TRACE-ID")
	for _, t := range payload.Traces {
		fmt.Printf("%-24s %8d %-8s %-8s %12s  %s\n",
			t.RID, t.Seq, obs.OutcomeName(t.Outcome), t.Policy,
			time.Duration(t.TotalNS), t.TraceID)
	}
}

func (c ctl) tracesGet(args []string) {
	rid, rest := popArg(args)
	fs := flag.NewFlagSet("traces get", flag.ExitOnError)
	out := fs.String("o", "", "write the Perfetto JSON here instead of stdout")
	_ = fs.Parse(rest)
	if rid == "" && fs.NArg() == 1 {
		rid = fs.Arg(0)
	} else if rid == "" || fs.NArg() != 0 {
		fail(fmt.Errorf("traces get: exactly one <rid> argument required"))
	}

	var tf any
	if err := c.get("/debug/traces/"+url.PathEscape(rid), &tf); err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tf); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Printf("trace for %s written to %s (open in ui.perfetto.dev)\n", rid, *out)
	}
}

func (c ctl) slo(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	_ = fs.Parse(args)

	var snap obs.SLOSnapshot
	if err := c.get("/debug/slo", &snap); err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(snap)
		return
	}
	fmt.Printf("objectives avail %.4f, latency %.4f within %s\n",
		snap.AvailabilityObjective, snap.LatencyObjective,
		time.Duration(snap.LatencyTargetNS))
	if len(snap.Windows) == 0 {
		fmt.Println("no windows configured (daemon started without -slo?)")
		return
	}
	fmt.Printf("%-8s %8s %10s %10s %10s %10s %12s\n",
		"WINDOW", "TOTAL", "AVAIL", "BURN", "LAT-ATT", "LAT-BURN", "MEAN")
	for _, w := range snap.Windows {
		fmt.Printf("%-8s %8d %10.4f %10.2f %10.4f %10.2f %12s\n",
			time.Duration(w.WindowSec)*time.Second, w.Total,
			w.Availability, w.AvailBurnRate,
			w.LatencyAttainment, w.LatencyBurnRate,
			time.Duration(w.MeanLatencyNS))
	}
}

// clusterLs renders a parcflrouter's /v1/cluster rollup: one row per shard
// with health, ownership size, traffic and router-observed latency.
func (c ctl) clusterLs(args []string) {
	fs := flag.NewFlagSet("cluster ls", flag.ExitOnError)
	_ = fs.Parse(args)

	var st router.ClusterStatus
	if err := c.get("/v1/cluster", &st); err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(st)
		return
	}
	fmt.Printf("cluster    %d/%d shards up, %d nodes in %d components, router up %s\n",
		st.ShardsUp, st.NumShards, st.NumNodes, st.NumComponents,
		time.Duration(st.UptimeNS).Round(time.Second))
	fmt.Printf("%-5s %-6s %8s %10s %8s %12s %12s  %s\n",
		"SHARD", "UP", "NODES", "REQUESTS", "ERRORS", "P50", "P99", "ADDR")
	for _, s := range st.Shards {
		up := "up"
		if !s.Up {
			up = "DOWN"
		}
		fmt.Printf("%-5d %-6s %8d %10d %8d %12s %12s  %s\n",
			s.Index, up, s.Nodes, s.Requests, s.Errors,
			time.Duration(s.P50NS), time.Duration(s.P99NS), s.Addr)
		if s.LastError != "" {
			fmt.Printf("      last error: %s\n", s.LastError)
		}
	}
}

// clusterSLO renders /v1/cluster/slo: each shard's burn-rate windows side
// by side, so one hot replica is visible before the cluster-summed stats
// move.
func (c ctl) clusterSLO(args []string) {
	fs := flag.NewFlagSet("cluster slo", flag.ExitOnError)
	_ = fs.Parse(args)

	var payload struct {
		Schema string               `json:"schema"`
		Shards []router.ShardSLORow `json:"shards"`
	}
	if err := c.get("/v1/cluster/slo", &payload); err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(payload)
		return
	}
	for _, row := range payload.Shards {
		fmt.Printf("shard %d (%s)\n", row.Index, row.Addr)
		if row.Error != "" {
			fmt.Printf("  unreachable: %s\n", row.Error)
			continue
		}
		var snap obs.SLOSnapshot
		if err := json.Unmarshal(row.SLO, &snap); err != nil {
			fmt.Printf("  bad payload: %v\n", err)
			continue
		}
		if len(snap.Windows) == 0 {
			fmt.Println("  no windows configured")
			continue
		}
		fmt.Printf("  %-8s %8s %10s %10s %10s %10s\n",
			"WINDOW", "TOTAL", "AVAIL", "BURN", "LAT-ATT", "LAT-BURN")
		for _, w := range snap.Windows {
			fmt.Printf("  %-8s %8d %10.4f %10.2f %10.4f %10.2f\n",
				time.Duration(w.WindowSec)*time.Second, w.Total,
				w.Availability, w.AvailBurnRate,
				w.LatencyAttainment, w.LatencyBurnRate)
		}
	}
}

func (c ctl) bundleLs(args []string) {
	fs := flag.NewFlagSet("bundle ls", flag.ExitOnError)
	_ = fs.Parse(args)

	var list struct {
		Bundles []diag.BundleInfo `json:"bundles"`
	}
	if err := c.get("/debug/bundle", &list); err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(list)
		return
	}
	if len(list.Bundles) == 0 {
		fmt.Println("no bundles captured")
		return
	}
	for _, b := range list.Bundles {
		fmt.Printf("%s  %-10s %-24s %8.1fKiB  %s\n",
			time.Unix(0, b.UnixNano).UTC().Format("2006-01-02T15:04:05Z"),
			b.Trigger, b.Reason, float64(b.SizeBytes)/1024, b.ID)
	}
}

func (c ctl) bundleTrigger(args []string) {
	fs := flag.NewFlagSet("bundle trigger", flag.ExitOnError)
	reason := fs.String("reason", "parcflctl", "reason recorded in the bundle manifest")
	_ = fs.Parse(args)

	var info diag.BundleInfo
	err := c.get("/debug/bundle?trigger=1&reason="+url.QueryEscape(*reason), &info)
	if err != nil {
		fail(err)
	}
	if c.asJSON {
		printJSON(info)
		return
	}
	fmt.Printf("captured %s (%s, %.1fKiB)\n", info.ID, info.File, float64(info.SizeBytes)/1024)
}

func (c ctl) bundleFetch(args []string) {
	id, rest := popArg(args)
	fs := flag.NewFlagSet("bundle fetch", flag.ExitOnError)
	out := fs.String("o", "", "write the tar.gz here (default bundle-<id12>.tar.gz)")
	_ = fs.Parse(rest)
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if id == "" || fs.NArg() != 0 {
		fail(fmt.Errorf("bundle fetch: exactly one <id> argument required"))
	}

	hc := &http.Client{Timeout: c.timeout}
	resp, err := hc.Get(c.base + "/debug/bundle/" + url.PathEscape(id))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail(fmt.Errorf("fetch %s: %s: %s", id, resp.Status, strings.TrimSpace(string(body))))
	}
	path := *out
	if path == "" {
		short := id
		if len(short) > 12 {
			short = short[:12]
		}
		path = "bundle-" + short + ".tar.gz"
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		fail(err)
	}
	fmt.Printf("bundle %s saved to %s\n", id, path)
}

// popArg lifts a leading positional operand so both "get <rid> -o f" and
// "get -o f <rid>" work — the flag package stops parsing at the first
// non-flag argument.
func popArg(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}
