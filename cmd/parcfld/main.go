// Command parcfld is the resident pointer-analysis daemon: load a program
// (or a warm snapshot of one), then answer points-to queries over HTTP for
// as long as the process lives, letting the jmp-edge store and result cache
// compound across requests.
//
//	$ parcfld -bench avrora -snapshot warm.pag -addr localhost:7070
//	$ parcflq -addr localhost:7070 main.s1
//
// On SIGINT/SIGTERM the daemon stops admission, answers every request it
// had accepted, saves a final snapshot (when -snapshot is set) and exits.
// Restarting against the same -snapshot warm-starts: the accumulated jump
// edges make the same queries cheaper than the first run paid.
//
// The obs debug mux (/metrics, /debug/pprof, /debug/obs, ...) is mounted on
// the service address itself, so one port serves queries and scrapes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parcfl/internal/cluster"
	"parcfl/internal/diag"
	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/gofront"
	"parcfl/internal/javagen"
	"parcfl/internal/mjlang"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/server"
	"parcfl/internal/snapshot"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcfld:", err)
	os.Exit(1)
}

func parseMode(s string) (engine.Mode, error) {
	switch strings.ToLower(s) {
	case "naive":
		return engine.Naive, nil
	case "d":
		return engine.D, nil
	case "dq":
		return engine.DQ, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want naive|d|dq)", s)
	}
}

func main() {
	addr := flag.String("addr", "localhost:7070", "serve the /v1 query API (and /metrics, /debug/*) on this address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr localhost:0)")
	srcFile := flag.String("src", "", "mini-Java source file (.mj)")
	goFile := flag.String("go", "", "Go source file")
	bench := flag.String("bench", "", "benchmark preset name")
	scale := flag.Float64("scale", 0.005, "generation scale for -bench")
	snapPath := flag.String("snapshot", "", "snapshot path: warm-start from it when it exists, save to it on shutdown and every -autosave")
	autosave := flag.Duration("autosave", 0, "autosave interval for -snapshot (0 = only on shutdown)")
	mode := flag.String("mode", "dq", "engine mode (naive|d|dq)")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 75000, "per-query step budget (0 = unbounded)")
	contextK := flag.Int("context-k", 0, "k-limit for call strings (0 = unlimited)")
	cache := flag.Bool("cache", true, "memoise whole result sets across queries (ptcache)")
	kern := flag.Bool("kernel", false, "traverse the preprocessed dense graph form (identical answers, faster hot loop); auto-enabled by a snapshot that carries one")
	queue := flag.Int("queue", 0, "admission queue depth in distinct variables (0 = 1024)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long to wait for concurrent queries to coalesce into one batch")
	batchMax := flag.Int("batch-max", 0, "max distinct variables per engine batch (0 = 256)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (Perfetto) file of request/batch/solver spans on shutdown")
	spanCap := flag.Int("span-cap", 1<<16, "max spans per track for -trace-out")
	slowLog := flag.Duration("slow-log", 0, "log queries slower than this with their phase breakdown (0 = off)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective for /debug/slo and parcfl_slo_* gauges")
	sloLatObj := flag.Float64("slo-latency-objective", 0.99, "fraction of successes that must meet -slo-latency-target")
	sloLatTarget := flag.Duration("slo-latency-target", 50*time.Millisecond, "latency SLI threshold")
	sample := flag.Duration("sample", 0, "flight-recorder sampling interval (0 = off; auto 250ms when -bundle-dir is set)")
	bundleDir := flag.String("bundle-dir", "", "enable the diagnostic-bundle watchdog, writing bundles into this directory (serves /debug/bundle)")
	bundleOnBurn := flag.Float64("bundle-on-burn", 0, "capture a bundle when the SLO burn rate reaches this multiple of sustainable (0 = rule off)")
	bundleQueueHigh := flag.Int64("bundle-queue-high", 0, "capture a bundle when the admission queue depth reaches this high-water mark (0 = rule off)")
	bundleP99 := flag.Duration("bundle-p99", 0, "capture a bundle when the per-interval p99 latency exceeds this target (0 = rule off)")
	bundleCooldown := flag.Duration("bundle-cooldown", 30*time.Second, "minimum gap between bundles from the same trigger rule")
	bundleRetain := flag.Int("bundle-retain", 8, "max bundles kept on disk; older ones are deleted")
	bundleCPUProfile := flag.Duration("bundle-cpu-profile", 250*time.Millisecond, "CPU-profile sampling window per bundle (negative = no cpu.pprof)")
	bundleAnomalyWindow := flag.Duration("bundle-anomaly-window", 5*time.Second, "retain every request trace for this long after a watchdog rule fires (negative = off)")
	shardSpec := flag.String("shard", "", "serve shard i of N (\"i/N\") of the -plan partition; queries owned elsewhere get a typed 421 redirect")
	planPath := flag.String("plan", "", "shard plan file (parcfl-shardplan/v1); read with -shard, written by -write-plan")
	writePlan := flag.Int("write-plan", 0, "partition the loaded program into N component-aware shards, write the plan to -plan and exit")
	traceStore := flag.Int("trace-store", 512, "retain up to this many tail-sampled request traces, queryable at /debug/traces (0 = off)")
	traceSample := flag.Float64("trace-sample", 0.01, "probability a healthy fast request is retained in the trace store as a baseline")
	traceSlowQ := flag.Float64("trace-slow-quantile", 0.99, "live latency quantile above which a request trace is always retained")
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fail(err)
	}

	// -write-plan is a build step, not a serving mode: partition the program
	// the other flags describe, persist the plan, exit.
	if *writePlan > 0 {
		if *planPath == "" {
			fail(fmt.Errorf("-write-plan needs -plan to say where the plan goes"))
		}
		g := planGraph(*snapPath, *srcFile, *goFile, *bench, *scale)
		p, err := cluster.BuildPlan(g, *writePlan)
		if err != nil {
			fail(err)
		}
		if err := cluster.SavePlan(*planPath, p); err != nil {
			fail(err)
		}
		fmt.Printf("parcfld: %d-shard plan over %d nodes (%d components) written to %s; shard sizes %v\n",
			p.NumShards, p.NumNodes, p.NumComponents, *planPath, p.ShardSizes)
		return
	}

	shardIdx, shardCount := 0, 0
	var plan *cluster.Plan
	if *shardSpec != "" {
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &shardIdx, &shardCount); err != nil ||
			shardIdx < 0 || shardCount < 1 || shardIdx >= shardCount {
			fail(fmt.Errorf("bad -shard %q (want i/N with 0 <= i < N)", *shardSpec))
		}
		if *planPath == "" {
			fail(fmt.Errorf("-shard needs -plan (build one with -write-plan)"))
		}
		plan, err = cluster.LoadPlan(*planPath)
		if err != nil {
			fail(err)
		}
		if plan.NumShards != shardCount {
			fail(fmt.Errorf("-shard %s disagrees with the plan's %d shards", *shardSpec, plan.NumShards))
		}
	}

	sink := obs.New(obs.Config{Workers: max(*threads, 1), TraceCap: 1 << 14})
	// A bundle without spans or timeseries is half blind, so -bundle-dir
	// implies span tracing (the buffers are rings: memory stays bounded and
	// the retained window is the most recent) and a default sampling rate.
	if *traceOut != "" || *bundleDir != "" {
		sink.EnableSpans(max(*threads, 1), *spanCap)
	}
	if *bundleDir != "" && *sample == 0 {
		*sample = 250 * time.Millisecond
	}
	var rec *obs.Recorder
	if *sample > 0 {
		rec = obs.NewRecorder(sink, obs.RecorderConfig{Interval: *sample})
		sink.AttachRecorder(rec)
		rec.Start()
	}
	// Exemplar storage is on unconditionally: it is one pointer per bucket
	// and the hot path stays alloc-free. Emission is negotiated per scrape —
	// only clients accepting application/openmetrics-text see exemplars on
	// the latency buckets; the default v0.0.4 body stays exemplar-free (and
	// therefore parseable by every classic Prometheus scraper).
	sink.EnableExemplars()
	// The trace store keeps the interesting tail of completed request
	// traces (failures, above-p99 latencies, anomaly windows, a sampled
	// baseline) live and queryable at /debug/traces. Bounded ring: memory
	// stays within -trace-store entries forever.
	if *traceStore > 0 {
		sink.AttachTraceStore(obs.NewTraceStore(sink, obs.TraceStoreConfig{
			Capacity:     *traceStore,
			SampleRate:   *traceSample,
			SlowQuantile: *traceSlowQ,
		}))
	}
	sink.AttachSLO(obs.NewSLO(obs.SLOConfig{
		AvailabilityObjective: *sloAvail,
		LatencyObjective:      *sloLatObj,
		LatencyTargetNS:       sloLatTarget.Nanoseconds(),
	}))
	cfg := server.Config{
		Mode: m, Threads: *threads, Budget: *budget, ContextK: *contextK,
		ResultCache: *cache, BatchWindow: *batchWindow, MaxBatch: *batchMax,
		QueueDepth: *queue, Kernel: *kern, Obs: sink,
	}
	if plan != nil {
		enc, err := plan.Encode()
		if err != nil {
			fail(err)
		}
		cfg.ShardOf = plan.ShardOf
		cfg.ShardIndex = shardIdx
		cfg.ShardCount = shardCount
		cfg.ShardPlan = enc
	}

	// Warm start beats cold load: an existing snapshot carries the graph
	// plus every jump edge and cached result earlier runs paid for.
	var srv *server.Server
	if *snapPath != "" {
		if snap, err := snapshot.Load(*snapPath); err == nil {
			if plan != nil {
				snap = shardSlice(snap, plan, shardIdx, shardCount)
			}
			srv = server.NewFromSnapshot(snap, cfg)
			fmt.Printf("parcfld: warm start from %s (%d nodes, store epoch %d, saved %s)\n",
				*snapPath, snap.Graph.NumNodes(), storeEpoch(snap),
				time.Unix(0, snap.Meta.CreatedUnixNano).Format(time.RFC3339))
		} else if !errors.Is(err, os.ErrNotExist) {
			fail(err)
		}
	}
	if srv == nil {
		lo := load(*srcFile, *goFile, *bench, *scale)
		if plan != nil {
			if err := plan.Matches(lo.Graph); err != nil {
				fail(fmt.Errorf("plan does not match the loaded program: %w", err))
			}
		}
		cfg.TypeLevels = lo.TypeLevels
		cfg.QueryVars = lo.AppQueryVars
		srv = server.New(lo.Graph, cfg)
		fmt.Printf("parcfld: cold start (%d nodes, %d query vars)\n",
			lo.Graph.NumNodes(), len(lo.AppQueryVars))
	}
	if plan != nil {
		fmt.Printf("parcfld: shard mode %d/%d (%d of %d nodes owned)\n",
			shardIdx, shardCount, plan.ShardSizes[shardIdx], plan.NumNodes)
	}

	// The fallback mux: the standard obs surface (/metrics, /debug/*,
	// /debug/traces) plus — when enabled — the diagnostic-bundle endpoints,
	// registered on the same DebugMux so the generated "/" index always
	// lists every mounted route.
	debugMux := obs.NewDebugMux(sink)
	fallback := http.Handler(debugMux)
	var watchdog *diag.Watchdog
	if *bundleDir != "" {
		watchdog, err = diag.New(diag.Config{
			Sink:           sink,
			Dir:            *bundleDir,
			Cooldown:       *bundleCooldown,
			MaxBundles:     *bundleRetain,
			CPUProfile:     *bundleCPUProfile,
			BurnThreshold:  *bundleOnBurn,
			QueueHighWater: *bundleQueueHigh,
			P99TargetNS:    bundleP99.Nanoseconds(),
			AnomalyWindow:  *bundleAnomalyWindow,
			Sources: map[string]diag.Source{
				"server-stats.json": func() ([]byte, error) {
					return json.MarshalIndent(srv.Stats(), "", "  ")
				},
				"config.json": func() ([]byte, error) {
					return json.MarshalIndent(map[string]any{
						"mode": *mode, "threads": *threads, "budget": *budget,
						"queue": *queue, "batch_window": batchWindow.String(),
						"batch_max": *batchMax, "timeout": timeout.String(),
						"slo_availability": *sloAvail, "slo_latency_objective": *sloLatObj,
						"slo_latency_target": sloLatTarget.String(),
						"bundle_on_burn":     *bundleOnBurn, "bundle_queue_high": *bundleQueueHigh,
						"bundle_p99": bundleP99.String(),
					}, "", "  ")
				},
			},
		})
		if err != nil {
			fail(err)
		}
		watchdog.Start()
		fmt.Printf("parcfld: bundle watchdog on %s (burn>=%g queue>=%d p99>%s, cooldown %s, retain %d)\n",
			*bundleDir, *bundleOnBurn, *bundleQueueHigh, *bundleP99, *bundleCooldown, *bundleRetain)
		debugMux.Handle("/debug/bundle", "diagnostic bundles (list/fetch/trigger)", diag.Handler(watchdog))
		debugMux.Handle("/debug/bundle/", "", diag.Handler(watchdog))
	}
	handler := server.NewHandler(srv, server.HandlerConfig{
		SnapshotPath:   *snapPath,
		DefaultTimeout: *timeout,
		SlowLog:        *slowLog,
		Fallback:       fallback,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("parcfld: serving on http://%s\n", ln.Addr())
	if *addrFile != "" {
		// Atomic so a script polling the path can never read a partial write.
		if err := cluster.WriteFileAtomic(*addrFile, []byte(ln.Addr().String())); err != nil {
			fail(err)
		}
	}
	httpSrv := &http.Server{Handler: handler}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()

	stopAutosave := make(chan struct{})
	if *snapPath != "" && *autosave > 0 {
		go func() {
			t := time.NewTicker(*autosave)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.SaveSnapshot(*snapPath, "autosave"); err != nil {
						fmt.Fprintln(os.Stderr, "parcfld: autosave:", err)
					}
				case <-stopAutosave:
					return
				}
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	fmt.Println("parcfld: draining...")
	close(stopAutosave)
	// Quiesce the watchdog before draining: a capture racing shutdown would
	// profile the teardown, not the anomaly. The sampler stops after the
	// drain so its final point covers the served traffic.
	watchdog.Stop()

	// Stop accepting HTTP first, then drain the solver: every admitted
	// request gets its answer before the final snapshot is cut.
	ctx, cancel := context.WithTimeout(context.Background(), 2**timeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Most likely a handler still running at the deadline: a hung
		// listener during SIGTERM drain should be visible, not silent.
		fmt.Fprintln(os.Stderr, "parcfld: http drain:", err)
	}
	srv.Close()
	rec.Stop()
	// The server is drained and the dispatcher has exited: every span is
	// final, so the trace flush below never races a producer.
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sink); err != nil {
			fmt.Fprintln(os.Stderr, "parcfld: trace:", err)
		} else {
			fmt.Printf("parcfld: trace written to %s\n", *traceOut)
		}
	}
	if *snapPath != "" {
		if err := srv.SaveSnapshot(*snapPath, "shutdown"); err != nil {
			fmt.Fprintln(os.Stderr, "parcfld: final snapshot:", err)
			os.Exit(1)
		}
		fmt.Printf("parcfld: snapshot saved to %s\n", *snapPath)
	}
	st := srv.Stats()
	fmt.Printf("parcfld: served %d requests (%d coalesced, %d batches, %d jumps taken)\n",
		st.Requests, st.Coalesced, st.Batches, st.JumpsTaken)
}

func load(srcFile, goFile, bench string, scale float64) *frontend.Lowered {
	var prg *frontend.Program
	var err error
	switch {
	case srcFile != "":
		var data []byte
		data, err = os.ReadFile(srcFile)
		if err == nil {
			prg, err = mjlang.Parse(string(data))
		}
	case goFile != "":
		var data []byte
		data, err = os.ReadFile(goFile)
		if err == nil {
			prg, err = gofront.Parse(string(data))
		}
	case bench != "":
		var pr javagen.Preset
		pr, err = javagen.PresetByName(bench)
		if err == nil {
			prg, err = javagen.Generate(pr.Params(scale))
		}
	default:
		err = fmt.Errorf("need -src, -go, -bench or an existing -snapshot")
	}
	if err != nil {
		fail(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		fail(err)
	}
	return lo
}

// planGraph resolves the graph -write-plan partitions: a warm snapshot's
// when one exists (so the plan matches what replicas will restore), the
// loaded program's otherwise.
func planGraph(snapPath, srcFile, goFile, bench string, scale float64) *pag.Graph {
	if snapPath != "" {
		if snap, err := snapshot.Load(snapPath); err == nil {
			return snap.Graph
		} else if !errors.Is(err, os.ErrNotExist) {
			fail(err)
		}
	}
	return load(srcFile, goFile, bench, scale).Graph
}

// shardSlice adapts a warm snapshot to shard mode: an unsharded snapshot is
// sliced on the fly so the replica restores exactly its share of the jump
// store and result cache; a pre-sliced one must already be this shard's.
func shardSlice(snap *snapshot.Snapshot, p *cluster.Plan, idx, count int) *snapshot.Snapshot {
	if snap.Meta.NumShards == 0 {
		sliced, err := cluster.FilterSnapshot(snap, p, idx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("parcfld: sliced unsharded snapshot down to shard %d/%d\n", idx, count)
		return sliced
	}
	if snap.Meta.Shard != idx || snap.Meta.NumShards != count {
		fail(fmt.Errorf("snapshot was saved as shard %d/%d, daemon started as %d/%d",
			snap.Meta.Shard, snap.Meta.NumShards, idx, count))
	}
	if err := p.Matches(snap.Graph); err != nil {
		fail(fmt.Errorf("plan does not match the snapshot graph: %w", err))
	}
	return snap
}

func storeEpoch(s *snapshot.Snapshot) int64 {
	if s.Store == nil {
		return 0
	}
	return s.Store.Epoch()
}
