// Command parcflq is the thin client for a running parcfld daemon.
//
//	$ parcflq -addr localhost:7070 main.s1 main.s2   # query (batched)
//	$ parcflq -addr localhost:7070 -list 10          # show queryable vars
//	$ parcflq -addr localhost:7070 -stats            # service stats
//	$ parcflq -addr localhost:7070 -save warm.pag    # trigger a snapshot
//
// With -json, query results print as the daemon's wire JSON (one reply
// object), which is what scripts should parse.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parcfl/internal/server"
)

// mintRequestID makes a short client-side request ID, sent as the
// X-Parcfl-Request-Id header so the daemon's logs, trace lanes and reply
// all carry it. 8 random bytes is plenty for correlating a CLI session.
func mintRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("q-%d", time.Now().UnixNano())
	}
	return "q-" + hex.EncodeToString(b[:])
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcflq:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "localhost:7070", "parcfld address (host:port or full URL)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	stats := flag.Bool("stats", false, "print service stats and exit")
	list := flag.Int("list", 0, "list up to N queryable variables and exit (0 = off, negative = all)")
	save := flag.String("save", "", "trigger a snapshot save (empty string with -save= uses the daemon's configured path)")
	asJSON := flag.Bool("json", false, "print raw JSON instead of the human format")
	retries := flag.Int("retries", 0, "retry overloaded (429) responses up to N extra times with jittered backoff")
	verbose := flag.Bool("v", false, "print the request ID, trace ID and per-phase timing breakdown with each answer")
	rid := flag.String("request-id", "", "send this request ID instead of minting one")
	traceparent := flag.String("traceparent", "", "forward this W3C traceparent header value instead of minting one (joins an existing distributed trace)")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := server.NewClient(base, nil)
	if *retries > 0 {
		cl = cl.WithRetry(server.RetryPolicy{MaxAttempts: 1 + *retries})
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()

	saveSet := false
	flag.Visit(func(f *flag.Flag) { saveSet = saveSet || f.Name == "save" })

	switch {
	case *stats:
		st, err := cl.Stats(ctx)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
			return
		}
		fmt.Printf("requests   %d (coalesced %d, rejected %d, timeouts %d)\n",
			st.Requests, st.Coalesced, st.Rejected, st.Timeouts)
		fmt.Printf("batches    %d (queries solved %d, aborted %d)\n",
			st.Batches, st.Queries, st.Aborted)
		fmt.Printf("steps      %d total, %d saved by jmp shortcuts, %d jumps taken\n",
			st.TotalSteps, st.StepsSaved, st.JumpsTaken)
		fmt.Printf("store      epoch %d, %d finished + %d unfinished jmp entries\n",
			st.StoreEpoch, st.Share.FinishedAdded, st.Share.UnfinishedAdded)
		fmt.Printf("cache      %d hits, %d misses\n", st.Cache.Hits, st.Cache.Misses)
		fmt.Printf("engine     %.3fs busy over %.1fs uptime\n",
			float64(st.EngineNS)/1e9, float64(st.UptimeNS)/1e9)
		return

	case *list != 0:
		vars, err := cl.Vars(ctx)
		if err != nil {
			fail(err)
		}
		n := len(vars)
		if *list > 0 && *list < n {
			n = *list
		}
		for _, v := range vars[:n] {
			fmt.Println(v)
		}
		if n < len(vars) {
			fmt.Printf("... and %d more\n", len(vars)-n)
		}
		return

	case saveSet:
		path, err := cl.SaveSnapshot(ctx, *save)
		if err != nil {
			fail(err)
		}
		fmt.Println("snapshot saved to", path)
		return
	}

	vars := flag.Args()
	if len(vars) == 0 {
		fail(fmt.Errorf("nothing to do: give variables to query, or -stats/-list/-save"))
	}
	id := *rid
	if id == "" {
		id = mintRequestID()
	}
	var reply server.QueryReply
	var err error
	if *traceparent != "" {
		reply, err = cl.QueryTraced(ctx, id, *traceparent, vars, *timeout)
	} else {
		// QueryRequest mints a fresh traceparent, so every CLI query is a
		// complete one-request trace resolvable at /debug/traces.
		reply, err = cl.QueryRequest(ctx, id, vars, *timeout)
	}
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reply)
		return
	}
	for _, r := range reply.Results {
		status := ""
		if r.Aborted {
			status = " (aborted: out of budget)"
		}
		fmt.Printf("%s -> {%s} (%d contexts, %d steps)%s\n",
			r.Var, strings.Join(r.Objects, ", "), r.Contexts, r.Steps, status)
		if *verbose && r.Timings != nil {
			t := r.Timings
			co := ""
			if t.Coalesced {
				co = fmt.Sprintf(" coalesced-onto=%d", t.Primary)
			}
			fmt.Printf("  seq=%d batch=%d%s total=%s = admit %s + queue %s + solve %s + fanout %s (+ marshal %s)\n",
				t.Seq, t.Batch, co, time.Duration(t.TotalNS),
				time.Duration(t.AdmitNS), time.Duration(t.QueueWaitNS),
				time.Duration(t.SolveNS), time.Duration(t.FanoutNS),
				time.Duration(t.MarshalNS))
		}
	}
	if *verbose {
		fmt.Printf("request-id %s\n", reply.RequestID)
		if reply.TraceID != "" {
			fmt.Printf("trace-id   %s\n", reply.TraceID)
		}
	}
}
