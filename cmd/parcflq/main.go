// Command parcflq is the thin client for a running parcfld daemon.
//
//	$ parcflq -addr localhost:7070 main.s1 main.s2   # query (batched)
//	$ parcflq -addr localhost:7070 -list 10          # show queryable vars
//	$ parcflq -addr localhost:7070 -stats            # service stats
//	$ parcflq -addr localhost:7070 -save warm.pag    # trigger a snapshot
//
// With -json, query results print as the daemon's wire JSON (one reply
// object), which is what scripts should parse.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parcfl/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcflq:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "localhost:7070", "parcfld address (host:port or full URL)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	stats := flag.Bool("stats", false, "print service stats and exit")
	list := flag.Int("list", 0, "list up to N queryable variables and exit (0 = off, negative = all)")
	save := flag.String("save", "", "trigger a snapshot save (empty string with -save= uses the daemon's configured path)")
	asJSON := flag.Bool("json", false, "print raw JSON instead of the human format")
	retries := flag.Int("retries", 0, "retry overloaded (429) responses up to N extra times with jittered backoff")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := server.NewClient(base, nil)
	if *retries > 0 {
		cl = cl.WithRetry(server.RetryPolicy{MaxAttempts: 1 + *retries})
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()

	saveSet := false
	flag.Visit(func(f *flag.Flag) { saveSet = saveSet || f.Name == "save" })

	switch {
	case *stats:
		st, err := cl.Stats(ctx)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
			return
		}
		fmt.Printf("requests   %d (coalesced %d, rejected %d, timeouts %d)\n",
			st.Requests, st.Coalesced, st.Rejected, st.Timeouts)
		fmt.Printf("batches    %d (queries solved %d, aborted %d)\n",
			st.Batches, st.Queries, st.Aborted)
		fmt.Printf("steps      %d total, %d saved by jmp shortcuts, %d jumps taken\n",
			st.TotalSteps, st.StepsSaved, st.JumpsTaken)
		fmt.Printf("store      epoch %d, %d finished + %d unfinished jmp entries\n",
			st.StoreEpoch, st.Share.FinishedAdded, st.Share.UnfinishedAdded)
		fmt.Printf("cache      %d hits, %d misses\n", st.Cache.Hits, st.Cache.Misses)
		fmt.Printf("engine     %.3fs busy over %.1fs uptime\n",
			float64(st.EngineNS)/1e9, float64(st.UptimeNS)/1e9)
		return

	case *list != 0:
		vars, err := cl.Vars(ctx)
		if err != nil {
			fail(err)
		}
		n := len(vars)
		if *list > 0 && *list < n {
			n = *list
		}
		for _, v := range vars[:n] {
			fmt.Println(v)
		}
		if n < len(vars) {
			fmt.Printf("... and %d more\n", len(vars)-n)
		}
		return

	case saveSet:
		path, err := cl.SaveSnapshot(ctx, *save)
		if err != nil {
			fail(err)
		}
		fmt.Println("snapshot saved to", path)
		return
	}

	vars := flag.Args()
	if len(vars) == 0 {
		fail(fmt.Errorf("nothing to do: give variables to query, or -stats/-list/-save"))
	}
	results, err := cl.Query(ctx, vars, *timeout)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(server.QueryReply{Results: results})
		return
	}
	for _, r := range results {
		status := ""
		if r.Aborted {
			status = " (aborted: out of budget)"
		}
		fmt.Printf("%s -> {%s} (%d contexts, %d steps)%s\n",
			r.Var, strings.Join(r.Objects, ", "), r.Contexts, r.Steps, status)
	}
}
