// Command parcflrouter is the stateless front of a sharded parcfl cluster:
// it loads a shard plan, learns the replica addresses, and serves the same
// /v1 query API a single parcfld does — splitting each batch by the plan,
// fanning out to the owning shards and merging the answers positionally.
//
//	$ parcfld -bench avrora -write-plan 2 -plan plan.json
//	$ parcfld -bench avrora -shard 0/2 -plan plan.json -addr localhost:7071 &
//	$ parcfld -bench avrora -shard 1/2 -plan plan.json -addr localhost:7072 &
//	$ parcflrouter -plan plan.json -shards localhost:7071,localhost:7072 -addr localhost:7070
//	$ parcflq -addr localhost:7070 main.s1     # unchanged clients
//
// The router holds no graph and no solver, so any number of router
// processes can front the same shard set. /metrics carries the cluster
// rollup (parcfl_cluster_*), /v1/cluster the shard health table, and
// /v1/cluster/slo each shard's burn rates side by side.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parcfl/internal/cluster"
	"parcfl/internal/cluster/router"
	"parcfl/internal/obs"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "parcflrouter:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "localhost:7070", "serve the routed /v1 query API (and /metrics, /debug/*) on this address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (atomic; for scripts using -addr localhost:0)")
	planPath := flag.String("plan", "", "shard plan file (parcfl-shardplan/v1, from parcfld -write-plan)")
	shards := flag.String("shards", "", "comma-separated shard base URLs, in shard order (host:port gets http:// prepended)")
	maxFanout := flag.Int("max-fanout", 0, "max concurrent per-shard subrequests per routed request (0 = all shards at once)")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-shard subrequest deadline")
	retries := flag.Int("retries", 3, "per-shard overload retry budget including the first try (<=1 disables)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "background shard probe period (0 = off)")
	timeout := flag.Duration("timeout", 30*time.Second, "default routed-request deadline")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses while shards are down")
	flag.Parse()

	if *planPath == "" {
		fail(fmt.Errorf("need -plan (build one with parcfld -write-plan N)"))
	}
	plan, err := cluster.LoadPlan(*planPath)
	if err != nil {
		fail(err)
	}
	if *shards == "" {
		fail(fmt.Errorf("need -shards with %d comma-separated addresses", plan.NumShards))
	}
	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		addrs = append(addrs, a)
	}

	sink := obs.New(obs.Config{Workers: 1})
	hi := *healthInterval
	if hi == 0 {
		hi = -1 // flag 0 means off; router Config 0 means default
	}
	ra := *retries
	if ra <= 1 {
		ra = -1
	}
	rt, err := router.New(router.Config{
		Plan: plan, Shards: addrs,
		MaxFanout: *maxFanout, ShardTimeout: *shardTimeout,
		RetryAttempts: ra, HealthInterval: hi, Obs: sink,
	})
	if err != nil {
		fail(err)
	}
	handler := router.NewHandler(rt, router.HandlerConfig{
		DefaultTimeout: *timeout,
		RetryAfter:     *retryAfter,
		Fallback:       obs.NewDebugMux(sink),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("parcflrouter: routing %d shards (%d nodes, %d components) on http://%s\n",
		plan.NumShards, plan.NumNodes, plan.NumComponents, ln.Addr())
	if *addrFile != "" {
		if err := cluster.WriteFileAtomic(*addrFile, []byte(ln.Addr().String())); err != nil {
			fail(err)
		}
	}
	httpSrv := &http.Server{Handler: handler}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	fmt.Println("parcflrouter: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 2**timeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "parcflrouter: http drain:", err)
	}
	rt.Close()
	st := rt.Status()
	total, errs := int64(0), int64(0)
	for _, s := range st.Shards {
		total += s.Requests
		errs += s.Errors
	}
	fmt.Printf("parcflrouter: issued %d shard subrequests (%d failed)\n", total, errs)
}
