# Development targets. `make check` is the gate a change must pass before
# it ships: build, vet, the full test suite, and the race detector over the
# concurrency-heavy packages.

GO ?= go

.PHONY: check build vet test race bench-json serve-smoke soak-smoke cluster-smoke clean

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages whose correctness depends on lock-free/striped-lock
# discipline; everything else is single-threaded or covered transitively.
# internal/kernel rides along because its Prep is shared read-only across
# worker goroutines — the race detector proves no traversal mutates it.
race:
	$(GO) test -race ./internal/concurrent ./internal/share ./internal/engine ./internal/server ./internal/kernel ./internal/cluster/router

# Regenerate the benchmark-trajectory artifact (BENCH_runs.json).
bench-json:
	$(GO) run ./cmd/experiments -exp bench -json -scale 0.01 -threads 8

# End-to-end daemon smoke: boot parcfld, query it cold, snapshot, restart
# warm, assert identical results and live parcfl_server_* metrics. Pass
# SMOKE_WORK=dir to keep the workdir (CI does, to upload failure bundles).
serve-smoke:
	bash scripts/serve_smoke.sh $(SMOKE_WORK)

# Load-and-observability smoke: soak a warm-started traced daemon with
# parcflload, assert a clean parcfl-soak/v1 report, nonzero parcfl_slo_*
# gauges, a request lane in the shutdown trace matching its timings, and an
# injected-overload phase that fires and validates a diagnostic bundle.
soak-smoke:
	bash scripts/soak_smoke.sh $(SMOKE_WORK)

# Cluster smoke: partition the program into 2 shards, boot both replicas
# behind a parcflrouter, assert routed results byte-identical to an
# unsharded daemon, then kill a shard and assert graceful degradation
# (503 + Retry-After all-or-nothing, partial results with allow_partial).
cluster-smoke:
	bash scripts/cluster_smoke.sh $(SMOKE_WORK)

clean:
	$(GO) clean ./...
